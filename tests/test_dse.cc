/**
 * @file
 * Unit tests for the DSE tool: Pareto utilities, design-space
 * plumbing, budget enforcement, skipping consistency, and the
 * energy-from-counts rescaling.
 */

#include <gtest/gtest.h>

#include "src/common/error.hh"
#include "src/dataflows/catalog.hh"
#include "src/dse/explorer.hh"
#include "src/model/zoo.hh"

namespace maestro
{
namespace
{

TEST(Pareto, FrontierDropsDominatedPoints)
{
    // (maximize, minimize): (3,3) dominates (2,4); (1,1) survives as
    // the low-energy end.
    std::vector<dse::ObjectivePoint> pts = {
        {3.0, 3.0, 0}, {2.0, 4.0, 1}, {1.0, 1.0, 2}, {2.0, 2.0, 3},
    };
    const auto frontier = dse::paretoFrontier(pts);
    ASSERT_EQ(frontier.size(), 3u);
    EXPECT_EQ(frontier[0].index, 0u);
    EXPECT_EQ(frontier[1].index, 3u);
    EXPECT_EQ(frontier[2].index, 2u);
}

TEST(Pareto, HandlesTies)
{
    std::vector<dse::ObjectivePoint> pts = {
        {2.0, 2.0, 0}, {2.0, 1.0, 1},
    };
    const auto frontier = dse::paretoFrontier(pts);
    ASSERT_EQ(frontier.size(), 1u);
    EXPECT_EQ(frontier[0].index, 1u);
}

TEST(DesignSpace, Ranges)
{
    EXPECT_EQ(dse::linearRange(8, 32, 8),
              (std::vector<Count>{8, 16, 24, 32}));
    EXPECT_EQ(dse::pow2Range(64, 512),
              (std::vector<Count>{64, 128, 256, 512}));
    EXPECT_THROW(dse::linearRange(8, 4, 8), Error);
}

TEST(DesignSpace, PresetSizes)
{
    EXPECT_GT(dse::DesignSpace::figure13().totalPoints(), 1e6);
    EXPECT_GT(dse::DesignSpace::large().totalPoints(), 1e8);
    EXPECT_LT(dse::DesignSpace::small().totalPoints(), 1e5);
}

TEST(Explorer, RespectsBudgets)
{
    const Network net = zoo::vgg16();
    const Layer &layer = net.layer("CONV11");
    const dse::Explorer explorer(AcceleratorConfig::paperStudy());
    dse::DseOptions options;
    options.sample_stride = 13;

    const dse::DseResult res =
        explorer.explore(layer, dataflows::kcPartitioned(),
                         dse::DesignSpace::small(), options);
    EXPECT_GT(res.valid_points, 0.0);
    EXPECT_GE(res.explored_points,
              dse::DesignSpace::small().totalPoints() - 0.5);
    for (const auto &p : res.samples) {
        EXPECT_LE(p.area, options.area_budget_mm2 + 1e-9);
        EXPECT_LE(p.power, options.power_budget_mw + 1e-9);
        EXPECT_GE(static_cast<double>(p.l1_bytes), p.l1_required);
        EXPECT_GE(static_cast<double>(p.l2_bytes), p.l2_required);
    }
}

TEST(Explorer, TightBudgetShrinksValidSet)
{
    const Network net = zoo::vgg16();
    const Layer &layer = net.layer("CONV11");
    const dse::Explorer explorer(AcceleratorConfig::paperStudy());
    dse::DseOptions loose;
    dse::DseOptions tight;
    tight.area_budget_mm2 = 4.0;
    tight.power_budget_mw = 120.0;
    const auto a = explorer.explore(layer, dataflows::yrPartitioned(),
                                    dse::DesignSpace::small(), loose);
    const auto b = explorer.explore(layer, dataflows::yrPartitioned(),
                                    dse::DesignSpace::small(), tight);
    EXPECT_LT(b.valid_points, a.valid_points);
    EXPECT_LE(b.best_throughput.throughput,
              a.best_throughput.throughput + 1e-9);
}

TEST(Explorer, BestsAreConsistent)
{
    const Network net = zoo::vgg16();
    const Layer &layer = net.layer("CONV11");
    const dse::Explorer explorer(AcceleratorConfig::paperStudy());
    const auto res =
        explorer.explore(layer, dataflows::kcPartitioned(),
                         dse::DesignSpace::small(), dse::DseOptions());
    ASSERT_TRUE(res.best_throughput.valid);
    ASSERT_TRUE(res.best_energy.valid);
    ASSERT_TRUE(res.best_edp.valid);
    EXPECT_GE(res.best_throughput.throughput,
              res.best_energy.throughput - 1e-9);
    EXPECT_LE(res.best_energy.energy,
              res.best_throughput.energy + 1e-9);
    EXPECT_LE(res.best_edp.edp, res.best_throughput.edp + 1e-9);
    EXPECT_LE(res.best_edp.edp, res.best_energy.edp + 1e-9);
}

TEST(Explorer, ParetoPointsAreMutuallyNonDominating)
{
    const Network net = zoo::vgg16();
    const Layer &layer = net.layer("CONV2");
    const dse::Explorer explorer(AcceleratorConfig::paperStudy());
    dse::DseOptions options;
    options.sample_stride = 7;
    const auto res =
        explorer.explore(layer, dataflows::yrPartitioned(),
                         dse::DesignSpace::small(), options);
    for (std::size_t i = 0; i < res.pareto.size(); ++i) {
        for (std::size_t j = 0; j < res.pareto.size(); ++j) {
            if (i == j)
                continue;
            const auto &a = res.pareto[i];
            const auto &b = res.pareto[j];
            const bool dominates = a.throughput >= b.throughput &&
                                   a.energy <= b.energy &&
                                   (a.throughput > b.throughput ||
                                    a.energy < b.energy);
            EXPECT_FALSE(dominates) << i << " dominates " << j;
        }
    }
}

TEST(Explorer, EnergyFromCountsMatchesAnalyzer)
{
    // Recomputing at the analyzer's own configuration must reproduce
    // the analyzer's total energy.
    const Network net = zoo::vgg16();
    const Layer &layer = net.layer("CONV11");
    AcceleratorConfig cfg = AcceleratorConfig::paperStudy();
    const Analyzer analyzer(cfg);
    const LayerAnalysis la =
        analyzer.analyzeLayer(layer, dataflows::kcPartitioned());
    const double recomputed = dse::energyFromCounts(
        la.cost, cfg.l1_bytes, cfg.l2_bytes, cfg.precision_bytes,
        cfg.noc.avgLatency(), EnergyModel());
    EXPECT_NEAR(recomputed, la.energy(), 1e-6 * la.energy());
}

TEST(Explorer, BiggerL2CutsRecomputedDramEnergy)
{
    const Network net = zoo::vgg16();
    const Layer &layer = net.layer("CONV11");
    AcceleratorConfig cfg = AcceleratorConfig::paperStudy();
    cfg.l2_bytes = 16 * 1024; // nothing resident at analysis time
    const Analyzer analyzer(cfg);
    const LayerAnalysis la =
        analyzer.analyzeLayer(layer, dataflows::kcPartitioned());
    const double small = dse::energyFromCounts(
        la.cost, 512, 16 * 1024, 1, 1.0, EnergyModel());
    const double big = dse::energyFromCounts(
        la.cost, 512, 1 << 20, 1, 1.0, EnergyModel());
    // The 1 MiB L2 holds CONV11's input: its refetches leave DRAM.
    EXPECT_LT(big, small);
}

TEST(Explorer, ExactCacheDistinguishesCloseBandwidths)
{
    // Regression: the exact sweep's evaluation cache used to key on
    // static_cast<Count>(bw * 1024.0), aliasing bandwidths closer than
    // 2^-10 elements/cycle — the second one silently reused the first
    // one's analysis. The key is now the double's bit pattern.
    const Network net = zoo::vgg16();
    const Layer &layer = net.layer("CONV2");
    const dse::Explorer explorer(AcceleratorConfig::paperStudy());
    dse::DesignSpace space;
    space.pe_counts = {256};
    space.l1_sizes = {4096};
    space.l2_sizes = {1 << 20};
    const double bw = 1.0;
    const double bw_close = 1.0 + 0x1p-11; // same key under the old cast
    space.noc_bandwidths = {bw, bw_close};
    dse::DseOptions options;
    options.exact = true;
    options.sample_stride = 1;
    options.area_budget_mm2 = 100.0;
    options.power_budget_mw = 5000.0;
    const dse::DseResult res =
        explorer.explore(layer, dataflows::kcPartitioned(), space,
                         options);
    ASSERT_EQ(res.samples.size(), 2u);
    EXPECT_EQ(res.evaluated_pairs, 2.0);
    // At ~1 element/cycle the layer is NoC-bound, so the two
    // bandwidths must yield genuinely different runtimes.
    EXPECT_NE(res.samples[0].runtime, res.samples[1].runtime);
    EXPECT_NE(res.samples[0].noc_bandwidth,
              res.samples[1].noc_bandwidth);
}

TEST(Explorer, EmptySpaceRejected)
{
    const Network net = zoo::vgg16();
    const dse::Explorer explorer(AcceleratorConfig::paperStudy());
    dse::DesignSpace empty;
    EXPECT_THROW(explorer.explore(net.layer("CONV11"),
                                  dataflows::kcPartitioned(), empty),
                 Error);
}

} // namespace
} // namespace maestro
