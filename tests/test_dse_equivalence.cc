/**
 * @file
 * Exact-vs-fast DSE equivalence property tests.
 *
 * The fast sweep (closed-form interior selection, sharded pairs) must
 * be byte-identical to the exact grid walk in its best points, point
 * accounting, and Pareto frontier, for any thread count — these tests
 * drive both strategies over randomized design spaces, layers, and
 * budgets and compare every field with EXPECT_EQ (no tolerances).
 *
 * Also: an O(n^2) reference check and insertion-order invariance for
 * the streaming ParetoAccumulator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "src/common/error.hh"
#include "src/dataflows/catalog.hh"
#include "src/dse/explorer.hh"
#include "src/dse/pareto.hh"
#include "src/model/zoo.hh"

namespace maestro
{
namespace
{

void
expectSamePoint(const dse::DesignPoint &exact,
                const dse::DesignPoint &fast, const char *what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(exact.valid, fast.valid);
    if (!exact.valid || !fast.valid)
        return;
    EXPECT_EQ(exact.num_pes, fast.num_pes);
    EXPECT_EQ(exact.l1_bytes, fast.l1_bytes);
    EXPECT_EQ(exact.l2_bytes, fast.l2_bytes);
    EXPECT_EQ(exact.noc_bandwidth, fast.noc_bandwidth);
    EXPECT_EQ(exact.area, fast.area);
    EXPECT_EQ(exact.power, fast.power);
    EXPECT_EQ(exact.runtime, fast.runtime);
    EXPECT_EQ(exact.throughput, fast.throughput);
    EXPECT_EQ(exact.energy, fast.energy);
    EXPECT_EQ(exact.edp, fast.edp);
    EXPECT_EQ(exact.l1_required, fast.l1_required);
    EXPECT_EQ(exact.l2_required, fast.l2_required);
}

void
expectEquivalent(const dse::DseResult &exact, const dse::DseResult &fast)
{
    EXPECT_EQ(exact.explored_points, fast.explored_points);
    EXPECT_EQ(exact.evaluated_points, fast.evaluated_points);
    EXPECT_EQ(exact.valid_points, fast.valid_points);
    EXPECT_EQ(exact.evaluated_pairs, fast.evaluated_pairs);
    expectSamePoint(exact.best_throughput, fast.best_throughput,
                    "best_throughput");
    expectSamePoint(exact.best_energy, fast.best_energy, "best_energy");
    expectSamePoint(exact.best_edp, fast.best_edp, "best_edp");
    EXPECT_EQ(exact.frontier_size, fast.frontier_size);
    ASSERT_EQ(exact.pareto.size(), fast.pareto.size());
    for (std::size_t i = 0; i < exact.pareto.size(); ++i) {
        expectSamePoint(exact.pareto[i], fast.pareto[i], "pareto");
        EXPECT_TRUE(exact.pareto[i].valid);
    }
}

/** Draws a sorted design space (a few hundred to ~20K points) from
 *  the generator; may include duplicate entries and fractional
 *  bandwidths. */
dse::DesignSpace
randomSpace(std::mt19937 &rng)
{
    auto draw = [&](auto values, std::size_t lo, std::size_t hi) {
        std::uniform_int_distribution<std::size_t> count_dist(lo, hi);
        std::shuffle(values.begin(), values.end(), rng);
        values.resize(count_dist(rng));
        std::sort(values.begin(), values.end());
        return values;
    };
    dse::DesignSpace space;
    space.pe_counts = draw(
        std::vector<Count>{8, 16, 32, 64, 96, 128, 192, 256, 384, 512},
        1, 5);
    space.l1_sizes = draw(
        std::vector<Count>{64, 128, 256, 512, 1024, 2048, 4096, 8192},
        1, 6);
    space.l2_sizes =
        draw(std::vector<Count>{16384, 65536, 262144, 524288, 1048576,
                                2097152, 4194304},
             1, 6);
    space.noc_bandwidths = draw(
        std::vector<double>{0.5, 1.0, 1.5, 2.0, 4.0, 7.25, 16.0, 64.0},
        1, 5);
    // Occasionally inject a duplicate size to exercise repeated list
    // entries.
    if (space.l2_sizes.size() > 1 && (rng() & 1) != 0)
        space.l2_sizes.push_back(space.l2_sizes.back());
    return space;
}

struct BudgetCase
{
    double area;
    double power;
};

void
runEquivalenceSweep(const Layer &layer, const Dataflow &dataflow,
                    std::uint32_t seed)
{
    std::mt19937 rng(seed);
    const dse::Explorer explorer(AcceleratorConfig::paperStudy());
    const BudgetCase budgets[] = {
        {0.5, 10.0},     // tight: everything skipped
        {4.0, 120.0},    // partial
        {16.0, 450.0},   // the paper's Eyeriss budget
        {100.0, 5000.0}, // loose: nothing budget-pruned
    };
    for (int round = 0; round < 3; ++round) {
        const dse::DesignSpace space = randomSpace(rng);
        for (const BudgetCase &budget : budgets) {
            dse::DseOptions options;
            options.area_budget_mm2 = budget.area;
            options.power_budget_mw = budget.power;
            options.sample_stride = 7;
            options.max_pareto_points = 64;

            options.exact = true;
            const dse::DseResult exact =
                explorer.explore(layer, dataflow, space, options);

            options.exact = false;
            options.num_threads = 1;
            const dse::DseResult fast1 =
                explorer.explore(layer, dataflow, space, options);
            options.num_threads = 4;
            const dse::DseResult fast4 =
                explorer.explore(layer, dataflow, space, options);

            SCOPED_TRACE(msg("seed=", seed, " round=", round,
                             " area=", budget.area));
            expectEquivalent(exact, fast1);
            expectEquivalent(exact, fast4);
        }
    }
}

TEST(DseEquivalence, Vgg16Conv2KcP)
{
    const Network net = zoo::vgg16();
    runEquivalenceSweep(net.layer("CONV2"), dataflows::byName("KC-P"),
                        0xC0FFEE);
}

TEST(DseEquivalence, Vgg16Conv11YrP)
{
    const Network net = zoo::vgg16();
    runEquivalenceSweep(net.layer("CONV11"), dataflows::byName("YR-P"),
                        0xBEEF);
}

TEST(DseEquivalence, DepthwiseGroupedLayer)
{
    // Grouped/depthwise layers exercise the per-group DRAM residency
    // scaling inside energyFromSums.
    const Network net = zoo::mobilenetV2();
    const Layer *depthwise = nullptr;
    for (const Layer &layer : net.layers()) {
        if (layer.type() == OpType::DepthwiseConv) {
            depthwise = &layer;
            break;
        }
    }
    ASSERT_NE(depthwise, nullptr);
    runEquivalenceSweep(*depthwise, dataflows::byName("YX-P"),
                        0xD1CE);
}

TEST(DseEquivalence, SingleElementAxes)
{
    const Network net = zoo::vgg16();
    const Layer &layer = net.layer("CONV2");
    const Dataflow df = dataflows::byName("KC-P");
    const dse::Explorer explorer(AcceleratorConfig::paperStudy());
    dse::DesignSpace space;
    space.pe_counts = {256};
    space.l1_sizes = {2048};
    space.l2_sizes = {1 << 20};
    space.noc_bandwidths = {16.0};
    for (const BudgetCase &budget :
         {BudgetCase{0.5, 10.0}, BudgetCase{100.0, 5000.0}}) {
        dse::DseOptions options;
        options.area_budget_mm2 = budget.area;
        options.power_budget_mw = budget.power;
        options.exact = true;
        const dse::DseResult exact =
            explorer.explore(layer, df, space, options);
        options.exact = false;
        const dse::DseResult fast =
            explorer.explore(layer, df, space, options);
        expectEquivalent(exact, fast);
        EXPECT_EQ(exact.explored_points, 1.0);
    }
}

TEST(DseEquivalence, RejectsUnsortedSpace)
{
    const Network net = zoo::vgg16();
    const Layer &layer = net.layer("CONV2");
    const Dataflow df = dataflows::byName("KC-P");
    const dse::Explorer explorer(AcceleratorConfig::paperStudy());
    dse::DesignSpace space = dse::DesignSpace::small();
    std::swap(space.l1_sizes.front(), space.l1_sizes.back());
    EXPECT_THROW(explorer.explore(layer, df, space, dse::DseOptions()),
                 Error);
}

// ---- ParetoAccumulator unit tests ----

/** O(n^2) reference: p survives iff no other point weakly dominates
 *  it under the accumulator's rule. */
std::vector<dse::FrontierPoint>
referenceFrontier(const std::vector<dse::FrontierPoint> &points)
{
    auto dominates = [](const dse::FrontierPoint &a,
                        const dse::FrontierPoint &b) {
        if (a.maximize < b.maximize || a.minimize > b.minimize)
            return false;
        return a.maximize > b.maximize || a.minimize < b.minimize ||
               a.order < b.order;
    };
    std::vector<dse::FrontierPoint> out;
    for (const auto &p : points) {
        bool dominated = false;
        for (const auto &q : points) {
            if (dominates(q, p)) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            out.push_back(p);
    }
    std::sort(out.begin(), out.end(),
              [](const dse::FrontierPoint &a,
                 const dse::FrontierPoint &b) {
                  return a.maximize > b.maximize;
              });
    return out;
}

TEST(ParetoAccumulator, MatchesQuadraticReference)
{
    std::mt19937 rng(12345);
    // Small value alphabet on purpose: plenty of exact ties in both
    // objectives, the hard case for dominance bookkeeping.
    std::uniform_int_distribution<int> value(0, 9);
    for (int round = 0; round < 50; ++round) {
        std::vector<dse::FrontierPoint> points;
        const std::size_t n = 1 + (rng() % 60);
        for (std::size_t i = 0; i < n; ++i) {
            points.push_back({static_cast<double>(value(rng)),
                              static_cast<double>(value(rng)),
                              static_cast<std::uint64_t>(i)});
        }
        dse::ParetoAccumulator acc;
        for (const auto &p : points)
            acc.insert(p);
        const auto got = acc.finish(0);
        const auto want = referenceFrontier(points);
        ASSERT_EQ(got.size(), want.size()) << "round " << round;
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].maximize, want[i].maximize);
            EXPECT_EQ(got[i].minimize, want[i].minimize);
            EXPECT_EQ(got[i].order, want[i].order);
        }
    }
}

TEST(ParetoAccumulator, InsertionOrderInvariant)
{
    std::mt19937 rng(999);
    std::uniform_int_distribution<int> value(0, 6);
    std::vector<dse::FrontierPoint> points;
    for (std::size_t i = 0; i < 40; ++i) {
        points.push_back({static_cast<double>(value(rng)),
                          static_cast<double>(value(rng)),
                          static_cast<std::uint64_t>(i)});
    }
    dse::ParetoAccumulator forward;
    for (const auto &p : points)
        forward.insert(p);
    const auto want = forward.finish(0);
    for (int round = 0; round < 10; ++round) {
        std::shuffle(points.begin(), points.end(), rng);
        dse::ParetoAccumulator shuffled;
        for (const auto &p : points)
            shuffled.insert(p);
        const auto got = shuffled.finish(0);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].maximize, want[i].maximize);
            EXPECT_EQ(got[i].minimize, want[i].minimize);
            EXPECT_EQ(got[i].order, want[i].order);
        }
    }
}

TEST(ParetoAccumulator, MergeMatchesCombinedInsert)
{
    std::mt19937 rng(4242);
    std::uniform_int_distribution<int> value(0, 8);
    std::vector<dse::FrontierPoint> points;
    for (std::size_t i = 0; i < 50; ++i) {
        points.push_back({static_cast<double>(value(rng)),
                          static_cast<double>(value(rng)),
                          static_cast<std::uint64_t>(i)});
    }
    dse::ParetoAccumulator combined, left, right;
    for (std::size_t i = 0; i < points.size(); ++i) {
        combined.insert(points[i]);
        (i % 2 == 0 ? left : right).insert(points[i]);
    }
    left.merge(right);
    const auto got = left.finish(0);
    const auto want = combined.finish(0);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].maximize, want[i].maximize);
        EXPECT_EQ(got[i].minimize, want[i].minimize);
        EXPECT_EQ(got[i].order, want[i].order);
    }
}

TEST(ParetoAccumulator, DecimationKeepsEndpoints)
{
    dse::ParetoAccumulator acc;
    // A strictly descending staircase: every point is on the frontier.
    for (int i = 0; i < 100; ++i) {
        acc.insert({static_cast<double>(100 - i),
                    static_cast<double>(100 - i),
                    static_cast<std::uint64_t>(i)});
    }
    ASSERT_EQ(acc.size(), 100u);
    const auto full = acc.finish(0);
    ASSERT_EQ(full.size(), 100u);
    const auto cut = acc.finish(10);
    ASSERT_EQ(cut.size(), 10u);
    EXPECT_EQ(cut.front().maximize, full.front().maximize);
    EXPECT_EQ(cut.back().maximize, full.back().maximize);
    // Decimated output stays sorted descending and is a subset.
    for (std::size_t i = 1; i < cut.size(); ++i)
        EXPECT_GT(cut[i - 1].maximize, cut[i].maximize);
    const auto one = acc.finish(1);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one.front().maximize, full.front().maximize);
}

} // namespace
} // namespace maestro
