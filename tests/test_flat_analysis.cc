/**
 * @file
 * Unit tests for the flattened nest analysis: cross-level
 * stationarity, multicast collapsing, and traffic conservation.
 */

#include <gtest/gtest.h>

#include "src/core/flat_analysis.hh"
#include "src/dataflows/catalog.hh"

namespace maestro
{
namespace
{

Layer
conv(Count k, Count c, Count hw, Count rs, Count stride = 1,
     Count pad = 0)
{
    DimMap<Count> d;
    d[Dim::N] = 1;
    d[Dim::K] = k;
    d[Dim::C] = c;
    d[Dim::Y] = hw;
    d[Dim::X] = hw;
    d[Dim::R] = rs;
    d[Dim::S] = rs;
    Layer l("test", OpType::Conv2D, d);
    l.stride(stride).padding(pad);
    return l;
}

struct Scenario
{
    BoundDataflow bound;
    std::vector<LevelReuse> reuse;
    FlatAnalysis flat;
};

Scenario
run(const Dataflow &df, const Layer &layer, Count pes,
    AcceleratorConfig config = AcceleratorConfig())
{
    config.num_pes = pes;
    Scenario s;
    s.bound = bindDataflow(df, layer, pes);
    const TensorInfo tensors = analyzeTensors(layer);
    const bool dw = layer.type() == OpType::DepthwiseConv;
    s.reuse = analyzeReuse(s.bound, tensors, dw);
    s.flat = analyzeFlat(s.bound, s.reuse, tensors, dw, config);
    return s;
}

double
l2SupplyElements(const Scenario &s, TensorKind t)
{
    return s.flat.l1_fill_per_pe[t] * s.flat.noc_mult[t];
}

TEST(FlatAnalysis, KcpWeightsReadExactlyOnce)
{
    // NVDLA-style KC-P keeps each PE's weights resident while the
    // whole output feature map streams: total L2 weight supply must
    // equal the weight tensor size (each element read exactly once).
    const Layer layer = conv(64, 64, 28, 3, 1, 1);
    const Scenario s = run(dataflows::kcPartitioned(), layer, 256);
    EXPECT_NEAR(l2SupplyElements(s, TensorKind::Weight),
                static_cast<double>(layer.tensorVolume(TensorKind::Weight)),
                1.0);
}

TEST(FlatAnalysis, KcpOutputSweepLoopsAreWeightStationary)
{
    const Scenario s =
        run(dataflows::kcPartitioned(), conv(64, 64, 28, 3, 1, 1), 256);
    // Find the Y and X loops (level 0 temporal): weight delta is zero.
    bool checked = false;
    for (const auto &fl : s.flat.loops) {
        if (!fl.is_fold && (fl.dim == Dim::Y || fl.dim == Dim::X)) {
            EXPECT_DOUBLE_EQ(fl.delta_pe[TensorKind::Weight], 0.0);
            checked = true;
        }
    }
    EXPECT_TRUE(checked);
}

TEST(FlatAnalysis, InputSlidingWindowDelta)
{
    const Scenario s =
        run(dataflows::kcPartitioned(), conv(64, 64, 28, 3, 1, 1), 256);
    // The innermost X loop slides the input window: the per-advance
    // input delta is one column of the PE's chunk (stride 1).
    const FlatLoop *x_loop = nullptr;
    for (const auto &fl : s.flat.loops) {
        if (!fl.is_fold && fl.dim == Dim::X)
            x_loop = &fl;
    }
    ASSERT_NE(x_loop, nullptr);
    // PE input chunk: C=1 x Y=3 x X=3; sliding by 1 column -> 3 new.
    EXPECT_DOUBLE_EQ(x_loop->delta_pe[TensorKind::Input], 3.0);
}

TEST(FlatAnalysis, MulticastCollapsesSharedInputs)
{
    // KC-P level 0 shares the input across the 4 K-partitioned
    // clusters: with multicast the NoC multiplier is 4x smaller than
    // the delivered multiplier.
    const Scenario s =
        run(dataflows::kcPartitioned(), conv(64, 64, 28, 3, 1, 1), 256);
    EXPECT_NEAR(s.flat.delivered_mult /
                    s.flat.noc_mult[TensorKind::Input],
                4.0, 1e-9);
}

TEST(FlatAnalysis, NoMulticastHardwareReplicatesTraffic)
{
    AcceleratorConfig cfg;
    cfg.spatial_multicast = false;
    const Layer layer = conv(64, 64, 28, 3, 1, 1);
    Scenario with = run(dataflows::kcPartitioned(), layer, 256);
    Scenario without = run(dataflows::kcPartitioned(), layer, 256, cfg);
    EXPECT_GT(without.flat.noc_mult[TensorKind::Input],
              with.flat.noc_mult[TensorKind::Input]);
    // Weights are disjoint per PE: multicast support changes nothing.
    EXPECT_DOUBLE_EQ(without.flat.noc_mult[TensorKind::Weight],
                     with.flat.noc_mult[TensorKind::Weight]);
}

TEST(FlatAnalysis, ReductionHardwareCollapsesCommits)
{
    AcceleratorConfig cfg;
    cfg.spatial_reduction = false;
    const Layer layer = conv(64, 64, 28, 3, 1, 1);
    Scenario with = run(dataflows::kcPartitioned(), layer, 256);
    Scenario without = run(dataflows::kcPartitioned(), layer, 256, cfg);
    // KC-P's inner level reduces across 64 PEs: without a fan-in tree
    // every partial goes up individually.
    EXPECT_NEAR(without.flat.out_noc_mult / with.flat.out_noc_mult,
                64.0, 1e-9);
}

TEST(FlatAnalysis, TotalPeStepsMatchesLevelProduct)
{
    const Scenario s =
        run(dataflows::yrPartitioned(), conv(64, 64, 56, 3, 1, 1), 256);
    double expect = 1.0;
    for (const auto &ru : s.reuse)
        expect *= ru.total_steps;
    EXPECT_DOUBLE_EQ(s.flat.total_pe_steps, expect);
}

TEST(FlatAnalysis, ActivePesNeverExceedArray)
{
    for (const Dataflow &df : dataflows::table3()) {
        const Scenario s = run(df, conv(32, 16, 28, 3, 1, 1), 64);
        EXPECT_LE(s.flat.active_pes, 64.0 + 1e-9) << df.name();
        EXPECT_GE(s.flat.active_pes, 1.0) << df.name();
    }
}

TEST(FlatAnalysis, L1FillAtLeastChunk)
{
    for (const Dataflow &df : dataflows::table3()) {
        const Scenario s = run(df, conv(32, 32, 28, 3, 1, 1), 64);
        for (TensorKind t : kAllTensors) {
            EXPECT_GE(s.flat.l1_fill_per_pe[t],
                      s.flat.pe_chunk[t] - 1e-9)
                << df.name() << " " << tensorName(t);
        }
    }
}

TEST(FlatAnalysis, FinalOutputsMatchLayer)
{
    const Layer layer = conv(32, 16, 28, 3, 1, 1);
    for (const Dataflow &df : dataflows::table3()) {
        const Scenario s = run(df, layer, 64);
        EXPECT_DOUBLE_EQ(
            s.flat.final_outputs,
            static_cast<double>(layer.tensorVolume(TensorKind::Output)))
            << df.name();
    }
}

TEST(FlatAnalysis, EgressCoversFinalOutputs)
{
    const Layer layer = conv(32, 16, 28, 3, 1, 1);
    for (const Dataflow &df : dataflows::table3()) {
        const Scenario s = run(df, layer, 64);
        const double commits =
            s.flat.egress_per_pe * s.flat.out_noc_mult;
        EXPECT_GE(commits, s.flat.final_outputs * (1.0 - 1e-9))
            << df.name();
    }
}

} // namespace
} // namespace maestro
