/**
 * @file
 * Unit tests for the DSL frontend: lexer, parser, serializer, and the
 * parse(serialize(x)) == x round-trip property.
 */

#include <gtest/gtest.h>

#include "src/common/error.hh"
#include "src/dataflows/catalog.hh"
#include "src/frontend/lexer.hh"
#include "src/frontend/parser.hh"
#include "src/frontend/serializer.hh"
#include "src/model/zoo.hh"

namespace maestro
{
namespace
{

using frontend::parseString;
using frontend::serialize;
using frontend::Token;
using frontend::TokenKind;
using frontend::tokenize;

TEST(Lexer, BasicTokens)
{
    const auto tokens = tokenize("SpatialMap(1,2) K;");
    ASSERT_EQ(tokens.size(), 9u); // incl. End
    EXPECT_EQ(tokens[0].kind, TokenKind::Identifier);
    EXPECT_EQ(tokens[0].text, "SpatialMap");
    EXPECT_EQ(tokens[1].kind, TokenKind::LParen);
    EXPECT_EQ(tokens[2].value, 1);
    EXPECT_EQ(tokens[3].kind, TokenKind::Comma);
    EXPECT_EQ(tokens[4].value, 2);
    EXPECT_EQ(tokens[6].text, "K");
    EXPECT_EQ(tokens[7].kind, TokenKind::Semicolon);
    EXPECT_EQ(tokens[8].kind, TokenKind::End);
}

TEST(Lexer, CommentsAndLines)
{
    const auto tokens =
        tokenize("// comment\nA /* multi\nline */ B");
    ASSERT_EQ(tokens.size(), 3u);
    EXPECT_EQ(tokens[0].text, "A");
    EXPECT_EQ(tokens[0].line, 2);
    EXPECT_EQ(tokens[1].text, "B");
    EXPECT_EQ(tokens[1].line, 3);
}

TEST(Lexer, HyphenatedIdentifiersVsMinus)
{
    // "C-P" is one identifier; "Sz(S)-1" keeps the minus operator.
    const auto tokens = tokenize("C-P Sz(S)-1");
    EXPECT_EQ(tokens[0].text, "C-P");
    EXPECT_EQ(tokens[1].text, "Sz");
    EXPECT_EQ(tokens[4].kind, TokenKind::RParen);
    EXPECT_EQ(tokens[5].kind, TokenKind::Minus);
    EXPECT_EQ(tokens[6].value, 1);
}

TEST(Lexer, RejectsUnknownCharacters)
{
    EXPECT_THROW(tokenize("a @ b"), Error);
    EXPECT_THROW(tokenize("/* unterminated"), Error);
}

TEST(Parser, SizeExpressions)
{
    const auto parsed = parseString(
        "Dataflow t { TemporalMap(8+Sz(S)-1, 8) X; }");
    const Dataflow &df = parsed.dataflows.at("t");
    const Directive &d = df.directives()[0];
    EXPECT_EQ(d.size.constant, 7);
    EXPECT_EQ(d.size.dim, Dim::S);
    EXPECT_EQ(d.offset.constant, 8);
}

TEST(Parser, OutputDimAliases)
{
    const auto parsed =
        parseString("Dataflow t { SpatialMap(1,1) Y'; }");
    EXPECT_EQ(parsed.dataflows.at("t").directives()[0].dim, Dim::Y);
}

TEST(Parser, NetworkWithLayersAndPerLayerDataflow)
{
    const auto parsed = parseString(R"(
        Network Tiny {
          Layer L1 {
            Type: CONV2D;
            Stride: 2;
            Padding: 1;
            Dimensions { K: 8; C: 3; Y: 16; X: 16; R: 3; S: 3; }
            Dataflow { SpatialMap(1,1) K; }
          }
          Layer L2 {
            Type: FC;
            Dimensions { K: 10; C: 128; }
          }
        }
    )");
    ASSERT_EQ(parsed.networks.size(), 1u);
    const Network &net = parsed.networks[0];
    EXPECT_EQ(net.layers().size(), 2u);
    EXPECT_EQ(net.layer("L1").strideVal(), 2);
    EXPECT_EQ(net.layer("L1").dim(Dim::K), 8);
    // Unspecified dims default to 1.
    EXPECT_EQ(net.layer("L2").dim(Dim::Y), 1);
    EXPECT_EQ(parsed.layer_dataflows.count("Tiny/L1"), 1u);
}

TEST(Parser, AcceleratorBlock)
{
    const auto parsed = parseString(R"(
        Accelerator {
          NumPEs: 128;
          L1: 1024;
          L2: 65536;
          NocBandwidth: 24;
          Multicast: false;
        }
    )");
    ASSERT_TRUE(parsed.accelerator.has_value());
    EXPECT_EQ(parsed.accelerator->num_pes, 128);
    EXPECT_EQ(parsed.accelerator->l1_bytes, 1024);
    EXPECT_DOUBLE_EQ(parsed.accelerator->noc.bandwidth(), 24.0);
    EXPECT_FALSE(parsed.accelerator->spatial_multicast);
    EXPECT_TRUE(parsed.accelerator->spatial_reduction);
}

TEST(Parser, ErrorsCarryLineNumbers)
{
    try {
        parseString("Dataflow t {\n  Bogus(1,1) K;\n}");
        FAIL() << "expected an Error";
    } catch (const Error &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
    }
}

TEST(Parser, RejectsDuplicateDataflow)
{
    EXPECT_THROW(parseString("Dataflow a { TemporalMap(1,1) K; }\n"
                             "Dataflow a { TemporalMap(1,1) C; }"),
                 Error);
}

TEST(Parser, RejectsUnknownBlocks)
{
    EXPECT_THROW(parseString("Garbage x { }"), Error);
    EXPECT_THROW(parseString("Network n { NotALayer x { } }"), Error);
}

TEST(RoundTrip, CatalogDataflows)
{
    for (const Dataflow &df : dataflows::table3()) {
        const auto parsed = parseString(serialize(df));
        const auto it = parsed.dataflows.find(df.name());
        ASSERT_NE(it, parsed.dataflows.end()) << df.name();
        EXPECT_TRUE(it->second.sameDirectives(df)) << df.name();
    }
}

TEST(RoundTrip, ZooNetworks)
{
    for (const char *name : {"vgg16", "alexnet", "mobilenetv2"}) {
        const Network net = zoo::byName(name);
        const auto parsed = parseString(serialize(net));
        ASSERT_EQ(parsed.networks.size(), 1u) << name;
        const Network &back = parsed.networks[0];
        ASSERT_EQ(back.layers().size(), net.layers().size()) << name;
        for (std::size_t i = 0; i < net.layers().size(); ++i) {
            const Layer &a = net.layers()[i];
            const Layer &b = back.layers()[i];
            EXPECT_EQ(a.name(), b.name());
            EXPECT_EQ(a.type(), b.type());
            EXPECT_EQ(a.strideVal(), b.strideVal());
            EXPECT_EQ(a.paddingVal(), b.paddingVal());
            EXPECT_EQ(a.groupsVal(), b.groupsVal());
            for (Dim d : kAllDims)
                EXPECT_EQ(a.dim(d), b.dim(d)) << a.name();
        }
    }
}

TEST(RoundTrip, AcceleratorConfig)
{
    AcceleratorConfig cfg = AcceleratorConfig::eyerissLike();
    cfg.spatial_multicast = false;
    const auto parsed = parseString(serialize(cfg));
    ASSERT_TRUE(parsed.accelerator.has_value());
    EXPECT_EQ(parsed.accelerator->num_pes, cfg.num_pes);
    EXPECT_EQ(parsed.accelerator->l1_bytes, cfg.l1_bytes);
    EXPECT_EQ(parsed.accelerator->l2_bytes, cfg.l2_bytes);
    EXPECT_DOUBLE_EQ(parsed.accelerator->noc.bandwidth(),
                     cfg.noc.bandwidth());
    EXPECT_EQ(parsed.accelerator->spatial_multicast,
              cfg.spatial_multicast);
    EXPECT_EQ(parsed.accelerator->precision_bytes,
              cfg.precision_bytes);
}

TEST(Parser, FileNotFound)
{
    EXPECT_THROW(frontend::parseFile("/nonexistent/path.m"), Error);
}

} // namespace
} // namespace maestro
