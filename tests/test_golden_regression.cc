/**
 * @file
 * Golden-number regression tests for the staged analysis pipeline.
 *
 * The values below were captured from the pre-pipeline analyzer (the
 * monolithic tensor -> bind -> reuse -> flat -> perf -> cost chain)
 * with "%.17g" formatting, which round-trips doubles exactly. The
 * pipeline refactor's hard constraint is byte-identical numerics, so
 * every comparison here is exact (EXPECT_EQ on doubles, no tolerance).
 *
 * The sweep spans zoo models with early/late conv, fully-connected,
 * depthwise, grouped, transposed-conv, and high-resolution layers,
 * both study hardware configs, and the Table-3 dataflow styles; plus
 * whole-network aggregates (serial and 2-thread), a DSE sweep, and a
 * tuner ranking.
 */

#include <gtest/gtest.h>

#include "src/core/analyzer.hh"
#include "src/dataflows/catalog.hh"
#include "src/dataflows/tuner.hh"
#include "src/dse/explorer.hh"
#include "src/model/zoo.hh"

namespace maestro
{
namespace
{

/** One frozen layer evaluation. */
struct LayerGolden
{
    const char *model;
    const char *layer;
    const char *dataflow;
    const char *hw; ///< "paper" or "eyeriss"

    double runtime;
    double total_macs;
    double active_pes;
    double noc_bw_req;
    double l1_bytes_required;
    double l2_bytes_required;
    double energy_total;
    double onchip_energy;
    double sum_dram_reads;
    double sum_l2_reads;
    double sum_l1_reads;
    double noc_elements;
};

const LayerGolden kLayerGoldens[] = {
    {"vgg16", "CONV1", "KC-P", "paper", 7225358.9149612831, 86704128,
     12, 15.444444444444445, 308, 278, 1384326796.8, 711622796.79999995,
     152256, 10502848, 173408256, 10502848},
    {"vgg16", "CONV1", "YR-P", "paper", 387684.6543141593, 86704128,
     224, 43.44444444444445, 40, 1290.6666666666667, 1550934807.04,
     878230807.03999996, 152256, 11414336, 231211008, 11414336},
    {"vgg16", "CONV2", "C-P", "paper", 29045923, 1849688064, 64,
     128.11111111111111, 38, 2306, 158405283840, 33342115840, 622104576,
     625315840, 3699376128, 625315840},
    {"vgg16", "CONV2", "KC-P", "eyeriss", 314281990, 1849688064, 128,
     192.22222222222223, 1192, 6920, 72934187916.236053,
     10077791116.236053, 311070720, 314281984, 3699376128, 314281984},
    {"vgg16", "CONV11", "KC-P", "paper", 2023477.0205078125, 462422016,
     256, 320.44444444444446, 38, 5768, 3900239462.4000001,
     3388239462.4000001, 2459648, 47202304, 924844032, 47202304},
    {"vgg16", "CONV11", "YX-P", "paper", 4246748.1251980243, 462422016,
     112, 29.444444444444443, 38, 562, 6673576542.2080002,
     5689717342.2080002, 4818944, 80325017.600000009, 1056964608,
     80325017.600000009},
    {"vgg16", "FC1", "KC-P", "paper", 4415501.0009765625, 102760448,
     256, 324, 2052, 648, 25953473024, 5395546624, 102785536, 128454656,
     205520896, 128454656},
    {"alexnet", "CONV2", "YR-P", "paper", 3317783.4037062121, 447897600,
     135, 23.199999999999999, 64, 928, 2914962988.8000002,
     2740761388.8000002, 684384, 21381120, 895795200, 21381120},
    {"alexnet", "CONV1", "X-P", "paper", 1916733.1095377605, 105415200,
     55, 22.09090909090909, 486, 5346, 955066260.60000014,
     859099260.60000014, 189435, 15746400, 210830400, 15746400},
    {"resnet50", "CONV1", "KC-P", "paper", 9834537.1961956527,
     118013952, 12, 15.081632653061224, 1668, 1478, 971798607.3599999,
     779248207.3599999, 159936, 9429952, 236027904, 9429952},
    {"resnet50", "S2B1_3x3", "YR-P", "paper", 689172.72090517241,
     115605504, 168, 41.333333333333336, 40, 992, 1046573219.84,
     958918819.84000003, 237568, 13348864, 231211008, 13348864},
    {"resnext50", "S2B1_3x3", "KC-P", "paper", 903713.79310344823,
     14450688, 16, 4.4444444444444446, 38, 368, 282998149.12,
     121513349.12, 406016, 1653248, 28901376, 1653248},
    {"resnext50", "S2B1_3x3", "YR-P", "eyeriss", 805888, 14450688, 168,
     41.333333333333336, 80, 1984, 225266320.80161184,
     63781520.801611841, 406016, 1668608, 28901376, 1668608},
    {"mobilenetv2", "B2_dw", "YR-P", "paper", 41046.875000000007,
     2709504, 168, 134.66666666666669, 28, 1616.0000000000002,
     382753777.92000008, 75035377.920000017, 1237536.0000000002,
     1527744.0000000002, 5419008, 1527744.0000000002},
    {"mobilenetv2", "B2_expand", "KC-P", "paper", 451642.01041666669,
     19267584, 64, 84, 52, 168, 574245416.96000004, 292952616.96000004,
     202240, 6022656, 38535168, 6022656},
    {"dcgan", "TRCONV2", "KC-P", "paper", 1835084.0056818181, 134217728,
     256, 1281, 66, 10248, 3661337886.7200003, 1976243486.7200003,
     8392704, 20447232, 671088640, 20447232},
    {"unet", "DOWN3", "YX-P", "paper", 30587926.38237847, 5863145472,
     250.66666666666666, 65.271604938271594, 38, 1185.9999999999998,
     257200643977.21594, 81152003977.216003, 870064127.99999964,
     904269107.19999993, 11975786496, 904269107.19999993},
};

/** One frozen whole-network evaluation at the paper-study config. */
struct NetworkGolden
{
    const char *model;
    const char *dataflow;
    double runtime;
    double energy;
    double onchip_energy;
    double total_macs;
};

// Refreshed when the DRAM residency bound gained the
// `l2 - l2_required` arm (see l2ResidencyBytes): tensors the L2 can
// pin alongside the streaming working set stopped refetching, which
// lowers DRAM and L2-fill energy and the off-chip fill delay on the
// networks below (cross-validated against the reference simulator).
const NetworkGolden kNetworkGoldens[] = {
    {"vgg16", "KC-P", 74255812.275943965, 212929334921.91995,
     119207496521.91998, 15470264320},
    {"resnet50", "KC-P", 36236775.931189723, 43360678804.160034,
     35225682004.160019, 3498311680},
    {"resnet50", "YR-P", 145013292.47263268, 79579107476.480042,
     71444110676.480026, 3498311680},
    {"mobilenetv2", "YR-P", 21947049.687538862, 13821108446.719994,
     10171743646.719997, 300774272},
    {"resnext50", "KC-P", 52600671.801771626, 53522387143.359993,
     44116196743.359985, 3408396288},
};

AcceleratorConfig
configByName(const std::string &name)
{
    return name == "eyeriss" ? AcceleratorConfig::eyerissLike()
                             : AcceleratorConfig::paperStudy();
}

double
sumTensors(const TensorMap<double> &counts)
{
    double total = 0.0;
    for (TensorKind t : kAllTensors)
        total += counts[t];
    return total;
}

class GoldenLayer : public ::testing::TestWithParam<LayerGolden>
{
};

TEST_P(GoldenLayer, MatchesPrePipelineNumbersExactly)
{
    const LayerGolden &g = GetParam();
    const Network net = zoo::byName(g.model);
    const Analyzer analyzer(configByName(g.hw));
    const LayerAnalysis la = analyzer.analyzeLayer(
        net.layer(g.layer), dataflows::byName(g.dataflow));

    EXPECT_EQ(la.runtime, g.runtime);
    EXPECT_EQ(la.total_macs, g.total_macs);
    EXPECT_EQ(la.active_pes, g.active_pes);
    EXPECT_EQ(la.noc_bw_requirement, g.noc_bw_req);
    EXPECT_EQ(la.cost.l1_bytes_required, g.l1_bytes_required);
    EXPECT_EQ(la.cost.l2_bytes_required, g.l2_bytes_required);
    EXPECT_EQ(la.energy(), g.energy_total);
    EXPECT_EQ(la.onchipEnergy(), g.onchip_energy);
    EXPECT_EQ(sumTensors(la.cost.dram_reads), g.sum_dram_reads);
    EXPECT_EQ(sumTensors(la.cost.l2_reads), g.sum_l2_reads);
    EXPECT_EQ(sumTensors(la.cost.l1_reads), g.sum_l1_reads);
    EXPECT_EQ(la.cost.noc_elements, g.noc_elements);
}

TEST_P(GoldenLayer, CacheHitReturnsIdenticalNumbers)
{
    const LayerGolden &g = GetParam();
    const Network net = zoo::byName(g.model);
    const Analyzer analyzer(configByName(g.hw));
    const Layer &layer = net.layer(g.layer);
    const Dataflow df = dataflows::byName(g.dataflow);

    const LayerAnalysis first = analyzer.analyzeLayer(layer, df);
    const LayerAnalysis second = analyzer.analyzeLayer(layer, df);
    EXPECT_GE(analyzer.pipelineStats().layer.hits, 1u);

    EXPECT_EQ(first.runtime, second.runtime);
    EXPECT_EQ(first.energy(), second.energy());
    EXPECT_EQ(sumTensors(first.cost.dram_reads),
              sumTensors(second.cost.dram_reads));
    EXPECT_EQ(first.runtime, g.runtime);
}

INSTANTIATE_TEST_SUITE_P(
    Golden, GoldenLayer, ::testing::ValuesIn(kLayerGoldens),
    [](const ::testing::TestParamInfo<LayerGolden> &info) {
        std::string name = std::string(info.param.model) + '_' +
                           info.param.layer + '_' +
                           info.param.dataflow + '_' + info.param.hw;
        for (char &ch : name) {
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        }
        return name;
    });

class GoldenNetwork : public ::testing::TestWithParam<NetworkGolden>
{
};

TEST_P(GoldenNetwork, MatchesPrePipelineNumbersExactly)
{
    const NetworkGolden &g = GetParam();
    const Network net = zoo::byName(g.model);
    const Analyzer analyzer(AcceleratorConfig::paperStudy());
    const NetworkAnalysis na =
        analyzer.analyzeNetwork(net, dataflows::byName(g.dataflow));

    EXPECT_EQ(na.runtime, g.runtime);
    EXPECT_EQ(na.energy, g.energy);
    EXPECT_EQ(na.onchip_energy, g.onchip_energy);
    EXPECT_EQ(na.total_macs, g.total_macs);
    EXPECT_EQ(na.layers.size(), net.layers().size());
}

TEST_P(GoldenNetwork, TwoThreadsMatchesGoldenExactly)
{
    const NetworkGolden &g = GetParam();
    const Network net = zoo::byName(g.model);
    const Analyzer analyzer(AcceleratorConfig::paperStudy());
    const NetworkAnalysis na = analyzer.analyzeNetwork(
        net, dataflows::byName(g.dataflow), /*num_threads=*/2);

    EXPECT_EQ(na.runtime, g.runtime);
    EXPECT_EQ(na.energy, g.energy);
    EXPECT_EQ(na.onchip_energy, g.onchip_energy);
    EXPECT_EQ(na.total_macs, g.total_macs);
}

INSTANTIATE_TEST_SUITE_P(
    Golden, GoldenNetwork, ::testing::ValuesIn(kNetworkGoldens),
    [](const ::testing::TestParamInfo<NetworkGolden> &info) {
        std::string name = std::string(info.param.model) + '_' +
                           info.param.dataflow;
        for (char &ch : name) {
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        }
        return name;
    });

/** The DSE sweep's frozen statistics and winning design. */
TEST(GoldenDse, SmallSpaceSweepMatchesPrePipelineNumbers)
{
    const Network net = zoo::vgg16();
    const dse::Explorer explorer(AcceleratorConfig::paperStudy());
    dse::DseOptions options;
    options.exact = true;
    const dse::DseResult res =
        explorer.explore(net.layer("CONV2"), dataflows::byName("KC-P"),
                         dse::DesignSpace::small(), options);

    EXPECT_EQ(res.explored_points, 4032);
    EXPECT_EQ(res.evaluated_points, 2795);
    EXPECT_EQ(res.valid_points, 1076);
    EXPECT_EQ(res.samples.size(), 2u);
    EXPECT_EQ(res.pareto.size(), 1u);

    for (const dse::DesignPoint *p :
         {&res.best_throughput, &res.best_energy, &res.best_edp}) {
        EXPECT_TRUE(p->valid);
        EXPECT_EQ(p->num_pes, 192);
        EXPECT_EQ(p->l1_bytes, 512);
        EXPECT_EQ(p->l2_bytes, 32768);
        EXPECT_EQ(p->noc_bandwidth, 64);
        EXPECT_EQ(p->area, 12.566927999999999);
        EXPECT_EQ(p->power, 330.01864000000006);
        EXPECT_EQ(p->runtime, 9940404.1818181816);
        EXPECT_EQ(p->throughput, 186.07775198751293);
        EXPECT_EQ(p->energy, 50713798067.625099);
        EXPECT_EQ(p->edp, 5.0411565038730336e+17);
    }
}

/** The fast sweep (the default) reproduces the exact sweep's frozen
 *  bests, accounting, and frontier on the same space. */
TEST(GoldenDse, FastSweepMatchesFrozenNumbers)
{
    const Network net = zoo::vgg16();
    const dse::Explorer explorer(AcceleratorConfig::paperStudy());
    const dse::DseResult res =
        explorer.explore(net.layer("CONV2"), dataflows::byName("KC-P"),
                         dse::DesignSpace::small());

    EXPECT_EQ(res.explored_points, 4032);
    EXPECT_EQ(res.evaluated_points, 2795);
    EXPECT_EQ(res.valid_points, 1076);
    EXPECT_EQ(res.pareto.size(), 1u);

    for (const dse::DesignPoint *p :
         {&res.best_throughput, &res.best_energy, &res.best_edp,
          &res.pareto.front()}) {
        EXPECT_TRUE(p->valid);
        EXPECT_EQ(p->num_pes, 192);
        EXPECT_EQ(p->l1_bytes, 512);
        EXPECT_EQ(p->l2_bytes, 32768);
        EXPECT_EQ(p->noc_bandwidth, 64);
        EXPECT_EQ(p->area, 12.566927999999999);
        EXPECT_EQ(p->power, 330.01864000000006);
        EXPECT_EQ(p->runtime, 9940404.1818181816);
        EXPECT_EQ(p->throughput, 186.07775198751293);
        EXPECT_EQ(p->energy, 50713798067.625099);
        EXPECT_EQ(p->edp, 5.0411565038730336e+17);
    }
}

/** The tuner's frozen ranking for a late VGG conv layer. */
TEST(GoldenTuner, Vgg16Conv11RuntimeRankingMatches)
{
    const Network net = zoo::vgg16();
    const Analyzer analyzer(AcceleratorConfig::paperStudy());
    const dataflows::TunerResult res = dataflows::tuneDataflow(
        analyzer, net.layer("CONV11"), dataflows::Objective::Runtime);

    EXPECT_EQ(res.candidates, 186u);
    EXPECT_EQ(res.rejected, 0u);
    ASSERT_GE(res.ranked.size(), 3u);
    EXPECT_EQ(res.ranked[0].dataflow.name(), "T-YC-c16-t8");
    EXPECT_EQ(res.ranked[0].objective_value, 2065033.59375);
    EXPECT_EQ(res.ranked[0].energy, 4105023979.5200005);
    EXPECT_EQ(res.ranked[1].dataflow.name(), "T-YC-c16-t16");
    EXPECT_EQ(res.ranked[1].objective_value, 2065650.1875);
    EXPECT_EQ(res.ranked[1].energy, 3840672727.04);
    EXPECT_EQ(res.ranked[2].dataflow.name(), "T-YC-c16-t32");
    EXPECT_EQ(res.ranked[2].objective_value, 2066883.375);
    EXPECT_EQ(res.ranked[2].energy, 3708497100.8000002);
}

} // namespace
} // namespace maestro
