/**
 * @file
 * Tests for the HTTP/1.1 message layer: incremental parsing down to
 * byte-at-a-time feeds, Content-Length body framing, pipelined-bytes
 * accounting, header normalization, keep-alive semantics, the
 * hostile-input error statuses (400/413/431/501/505), target/query
 * decoding, and response serialization. The parser must never throw
 * on malformed input — errors are a state, not an exception.
 */

#include <gtest/gtest.h>

#include <string>

#include "src/serve/http.hh"

namespace maestro
{
namespace serve
{
namespace
{

using State = HttpParser::State;

/** Feeds everything at once; expects full consumption. */
State
feedAll(HttpParser &p, const std::string &bytes)
{
    const std::size_t used = p.feed(bytes);
    EXPECT_EQ(used, bytes.size());
    return p.state();
}

TEST(HttpParser, SimpleGet)
{
    HttpParser p;
    const State s = feedAll(
        p, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    ASSERT_EQ(s, State::Complete);
    const HttpRequest &r = p.request();
    EXPECT_EQ(r.method, "GET");
    EXPECT_EQ(r.target, "/healthz");
    EXPECT_EQ(r.version, "HTTP/1.1");
    EXPECT_EQ(r.path(), "/healthz");
    EXPECT_TRUE(r.body.empty());
    EXPECT_TRUE(r.keepAlive());
}

TEST(HttpParser, PostWithBody)
{
    HttpParser p;
    const State s = feedAll(p,
                            "POST /analyze HTTP/1.1\r\n"
                            "Content-Length: 5\r\n\r\nhello");
    ASSERT_EQ(s, State::Complete);
    EXPECT_EQ(p.request().body, "hello");
}

TEST(HttpParser, ByteAtATime)
{
    const std::string raw =
        "POST /analyze?layer=conv1 HTTP/1.1\r\n"
        "Host: localhost\r\n"
        "Content-Length: 4\r\n"
        "\r\n"
        "body";
    HttpParser p;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        ASSERT_NE(p.state(), State::Error) << "at byte " << i;
        const std::size_t used =
            p.feed(std::string_view(raw.data() + i, 1));
        ASSERT_EQ(used, 1u) << "at byte " << i;
    }
    ASSERT_EQ(p.state(), State::Complete);
    EXPECT_EQ(p.request().body, "body");
    EXPECT_EQ(p.request().path(), "/analyze");
    // Once complete, further bytes are not consumed (pipelining).
    EXPECT_EQ(p.feed("GET"), 0u);
}

TEST(HttpParser, BodySplitAcrossFeeds)
{
    HttpParser p;
    const std::string head =
        "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n";
    EXPECT_EQ(p.feed(head), head.size());
    EXPECT_EQ(p.state(), State::Body);
    EXPECT_EQ(p.feed("01234"), 5u);
    EXPECT_EQ(p.state(), State::Body);
    EXPECT_EQ(p.feed("56789"), 5u);
    ASSERT_EQ(p.state(), State::Complete);
    EXPECT_EQ(p.request().body, "0123456789");
}

TEST(HttpParser, PipelinedSecondRequestNotConsumed)
{
    const std::string first = "GET /a HTTP/1.1\r\n\r\n";
    const std::string second = "GET /b HTTP/1.1\r\n\r\n";
    HttpParser p;
    const std::size_t used = p.feed(first + second);
    EXPECT_EQ(used, first.size());
    ASSERT_EQ(p.state(), State::Complete);
    EXPECT_EQ(p.request().target, "/a");

    // reset() starts the next request from the unconsumed bytes.
    p.reset();
    EXPECT_EQ(p.feed(second), second.size());
    ASSERT_EQ(p.state(), State::Complete);
    EXPECT_EQ(p.request().target, "/b");
}

TEST(HttpParser, HeaderNamesLowercasedValuesTrimmed)
{
    HttpParser p;
    feedAll(p,
            "GET / HTTP/1.1\r\n"
            "CoNtEnT-TyPe:   text/plain  \r\n\r\n");
    ASSERT_EQ(p.state(), State::Complete);
    const auto &h = p.request().headers;
    ASSERT_EQ(h.count("content-type"), 1u);
    EXPECT_EQ(h.at("content-type"), "text/plain");
}

TEST(HttpParser, KeepAliveRules)
{
    {
        HttpParser p;
        feedAll(p, "GET / HTTP/1.1\r\n\r\n");
        EXPECT_TRUE(p.request().keepAlive()); // 1.1 default
    }
    {
        HttpParser p;
        feedAll(p, "GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        EXPECT_FALSE(p.request().keepAlive());
    }
    {
        HttpParser p;
        feedAll(p, "GET / HTTP/1.0\r\n\r\n");
        EXPECT_FALSE(p.request().keepAlive()); // 1.0 default
    }
    {
        HttpParser p;
        feedAll(p,
                "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        EXPECT_TRUE(p.request().keepAlive());
    }
}

TEST(HttpParser, MalformedRequestLineIs400)
{
    HttpParser p;
    EXPECT_EQ(feedAll(p, "NONSENSE\r\n\r\n"), State::Error);
    EXPECT_EQ(p.errorStatus(), 400);
    EXPECT_FALSE(p.errorDetail().empty());
}

TEST(HttpParser, BadVersionIs505)
{
    HttpParser p;
    EXPECT_EQ(feedAll(p, "GET / HTTP/2.0\r\n\r\n"), State::Error);
    EXPECT_EQ(p.errorStatus(), 505);
}

TEST(HttpParser, BadContentLengthIs400)
{
    {
        HttpParser p;
        EXPECT_EQ(feedAll(p,
                          "POST / HTTP/1.1\r\n"
                          "Content-Length: abc\r\n\r\n"),
                  State::Error);
        EXPECT_EQ(p.errorStatus(), 400);
    }
    {
        HttpParser p;
        EXPECT_EQ(feedAll(p,
                          "POST / HTTP/1.1\r\n"
                          "Content-Length: -1\r\n\r\n"),
                  State::Error);
        EXPECT_EQ(p.errorStatus(), 400);
    }
}

TEST(HttpParser, OversizedHeadersAre431)
{
    HttpParser p(/*max_header_bytes=*/64, /*max_body_bytes=*/1024);
    std::string raw = "GET / HTTP/1.1\r\nX-Pad: ";
    raw.append(256, 'a');
    raw += "\r\n\r\n";
    p.feed(raw);
    ASSERT_EQ(p.state(), State::Error);
    EXPECT_EQ(p.errorStatus(), 431);
}

TEST(HttpParser, OversizedBodyIs413)
{
    HttpParser p(/*max_header_bytes=*/1024, /*max_body_bytes=*/8);
    feedAll(p, "POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n");
    ASSERT_EQ(p.state(), State::Error);
    EXPECT_EQ(p.errorStatus(), 413);
}

TEST(HttpParser, TransferEncodingIs501)
{
    HttpParser p;
    feedAll(p,
            "POST / HTTP/1.1\r\n"
            "Transfer-Encoding: chunked\r\n\r\n");
    ASSERT_EQ(p.state(), State::Error);
    EXPECT_EQ(p.errorStatus(), 501);
}

TEST(HttpParser, ResetClearsEverything)
{
    HttpParser p;
    feedAll(p, "GET / HTTP/2.0\r\n\r\n");
    ASSERT_EQ(p.state(), State::Error);
    p.reset();
    EXPECT_EQ(p.state(), State::Headers);
    feedAll(p, "GET /ok HTTP/1.1\r\n\r\n");
    ASSERT_EQ(p.state(), State::Complete);
    EXPECT_EQ(p.request().target, "/ok");
}

TEST(HttpRequest, QueryDecoding)
{
    HttpParser p;
    feedAll(p,
            "GET /dse?layer=conv%201&objective=edp&exact=on"
            " HTTP/1.1\r\n\r\n");
    ASSERT_EQ(p.state(), State::Complete);
    EXPECT_EQ(p.request().path(), "/dse");
    const QueryParams q = p.request().query();
    ASSERT_EQ(q.size(), 3u);
    EXPECT_EQ(q.at("layer"), "conv 1");
    EXPECT_EQ(q.at("objective"), "edp");
    EXPECT_EQ(q.at("exact"), "on");
}

TEST(HttpUrlDecode, PercentAndPlus)
{
    EXPECT_EQ(urlDecode("a%2Fb+c"), "a/b c");
    EXPECT_EQ(urlDecode("%41%62"), "Ab");
    // Malformed escapes pass through untouched rather than crash.
    EXPECT_EQ(urlDecode("%zz%4"), "%zz%4");
}

TEST(HttpResponse, SerializeShape)
{
    const std::string out = serializeResponse(
        200, "{\"ok\":true}", "application/json", true,
        {"Retry-After: 1"});
    EXPECT_NE(out.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
    EXPECT_NE(out.find("Content-Type: application/json\r\n"),
              std::string::npos);
    EXPECT_NE(out.find("Content-Length: 11\r\n"), std::string::npos);
    EXPECT_NE(out.find("Connection: keep-alive\r\n"),
              std::string::npos);
    EXPECT_NE(out.find("Retry-After: 1\r\n"), std::string::npos);
    const std::string tail = "\r\n\r\n{\"ok\":true}";
    ASSERT_GE(out.size(), tail.size());
    EXPECT_EQ(out.substr(out.size() - tail.size()), tail);
}

TEST(HttpResponse, CloseAndStatusReasons)
{
    const std::string out =
        serializeResponse(503, "", "application/json", false);
    EXPECT_NE(out.find("HTTP/1.1 503 Service Unavailable\r\n"),
              std::string::npos);
    EXPECT_NE(out.find("Connection: close\r\n"), std::string::npos);
    EXPECT_EQ(statusReason(408), "Request Timeout");
    EXPECT_EQ(statusReason(431),
              "Request Header Fields Too Large");
}

} // namespace
} // namespace serve
} // namespace maestro
