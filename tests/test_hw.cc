/**
 * @file
 * Unit tests for the hardware models: NoC pipe model, energy tables
 * and capacity scaling, area/power regressions.
 */

#include <gtest/gtest.h>

#include "src/common/error.hh"
#include "src/hw/area_power.hh"
#include "src/hw/energy.hh"

namespace maestro
{
namespace
{

TEST(Noc, PipeDelay)
{
    const NocModel pipe(8.0, 2.0);
    EXPECT_DOUBLE_EQ(pipe.delay(0.0), 0.0);
    EXPECT_DOUBLE_EQ(pipe.delay(16.0), 4.0);
    EXPECT_DOUBLE_EQ(pipe.delay(1.0), 2.125);
}

TEST(Noc, Presets)
{
    // Mesh: bisection bandwidth n, average latency n (paper Sec. 4.2).
    const NocModel mesh = NocModel::mesh(8);
    EXPECT_DOUBLE_EQ(mesh.bandwidth(), 8.0);
    EXPECT_DOUBLE_EQ(mesh.avgLatency(), 8.0);
    // Eyeriss-style hierarchical bus: 3x channel bandwidth.
    const NocModel hbus = NocModel::hierarchicalBus(4.0);
    EXPECT_DOUBLE_EQ(hbus.bandwidth(), 12.0);
    // Crossbar: ports x per-port width.
    EXPECT_DOUBLE_EQ(NocModel::crossbar(16, 2.0).bandwidth(), 32.0);
}

TEST(Noc, RejectsBadParameters)
{
    EXPECT_THROW(NocModel(0.0, 1.0), Error);
    EXPECT_THROW(NocModel(-1.0, 1.0), Error);
    EXPECT_THROW(NocModel(1.0, -1.0), Error);
}

TEST(Energy, RelativeMagnitudes)
{
    // The literature-standard ordering: MAC < L1 < L2 < DRAM.
    const EnergyModel e;
    EXPECT_LT(e.macEnergy(), e.l1ReadEnergy(2048));
    EXPECT_LT(e.l1ReadEnergy(2048), e.l2ReadEnergy(1 << 20));
    EXPECT_LT(e.l2ReadEnergy(1 << 20), e.dramEnergy());
}

TEST(Energy, CapacityScaling)
{
    // Cacti-style sqrt scaling: 4x the capacity -> 2x the energy.
    const EnergyModel e;
    EXPECT_NEAR(e.l1ReadEnergy(4 * 2048), 2.0 * e.l1ReadEnergy(2048),
                1e-9);
    EXPECT_NEAR(e.l2ReadEnergy((1 << 20) / 4),
                0.5 * e.l2ReadEnergy(1 << 20), 1e-9);
}

TEST(Energy, BreakdownAccumulation)
{
    EnergyBreakdown a;
    a.mac = 1.0;
    a.l1_read[TensorKind::Weight] = 2.0;
    a.noc = 3.0;
    EnergyBreakdown b;
    b.mac = 4.0;
    b.dram = 5.0;
    a += b;
    EXPECT_DOUBLE_EQ(a.mac, 5.0);
    EXPECT_DOUBLE_EQ(a.total(), 5.0 + 2.0 + 3.0 + 5.0);
}

TEST(AreaPower, MonotoneInEveryAxis)
{
    const AreaPowerModel model;
    AcceleratorConfig base = AcceleratorConfig::paperStudy();
    const double a0 = model.area(base);
    const double p0 = model.power(base);

    AcceleratorConfig more_pes = base;
    more_pes.num_pes *= 2;
    EXPECT_GT(model.area(more_pes), a0);
    EXPECT_GT(model.power(more_pes), p0);

    AcceleratorConfig more_l1 = base;
    more_l1.l1_bytes *= 2;
    EXPECT_GT(model.area(more_l1), a0);

    AcceleratorConfig more_bw = base;
    more_bw.noc = NocModel(base.noc.bandwidth() * 2, 1.0);
    EXPECT_GT(model.area(more_bw), a0);
    EXPECT_GT(model.power(more_bw), p0);
}

TEST(AreaPower, EyerissLikeFitsPaperBudget)
{
    // The Fig. 13 budget (16 mm^2 / 450 mW) must admit an
    // Eyeriss-class design under our calibration.
    const AreaPowerModel model;
    const AcceleratorConfig cfg = AcceleratorConfig::eyerissLike();
    EXPECT_LT(model.area(cfg), 16.0);
    EXPECT_LT(model.power(cfg), 450.0);
}

TEST(AreaPower, MinBoundsAreLowerBounds)
{
    const AreaPowerModel model;
    AcceleratorConfig cfg = AcceleratorConfig::paperStudy();
    EXPECT_LE(model.minAreaForPes(cfg.num_pes), model.area(cfg));
    EXPECT_LE(model.minPowerForPes(cfg.num_pes), model.power(cfg));
}

TEST(Accelerator, ValidateRejectsBadConfigs)
{
    AcceleratorConfig cfg;
    cfg.num_pes = 0;
    EXPECT_THROW(cfg.validate(), Error);
    cfg = AcceleratorConfig();
    cfg.vector_width = 0;
    EXPECT_THROW(cfg.validate(), Error);
    cfg = AcceleratorConfig();
    cfg.clock_ghz = 0.0;
    EXPECT_THROW(cfg.validate(), Error);
}

} // namespace
} // namespace maestro
