/**
 * @file
 * Unit tests for the async job subsystem: content hashing, the
 * content-addressed result cache, per-client admission budgets, and
 * the JobStore's lifecycle / bounds / fair-dequeue / determinism
 * guarantees (the server-level integration lives in test_serve.cc).
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/hash.hh"
#include "src/common/thread_pool.hh"
#include "src/serve/admission.hh"
#include "src/serve/jobs.hh"
#include "src/serve/result_cache.hh"

namespace maestro
{
namespace serve
{
namespace
{

// ---------------------------------------------------------------
// Content hashing
// ---------------------------------------------------------------

TEST(Hash, Fnv1aKnownVectors)
{
    // Standard FNV-1a 64 test vectors: the hash must be stable
    // across builds — job ids are derived from it.
    EXPECT_EQ(hashBytes(""), kFnvOffsetBasis);
    EXPECT_EQ(hashBytes("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(hashBytes("foobar"), 0x85944171f73967e8ull);
}

TEST(Hash, HexIsFixedWidthLowercase)
{
    EXPECT_EQ(hashHex(0), "0000000000000000");
    EXPECT_EQ(hashHex(kFnvOffsetBasis), "cbf29ce484222325");
    EXPECT_EQ(hashHex(0xffffffffffffffffull), "ffffffffffffffff");
}

TEST(Hash, CombineFoldsIntegers)
{
    const std::uint64_t h = hashBytes("seed");
    EXPECT_NE(hashCombine(h, 1), hashCombine(h, 2));
    EXPECT_NE(hashCombine(h, 0), h);
    EXPECT_EQ(hashCombine(h, 7), hashCombine(h, 7));
}

// ---------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------

TEST(ResultCache, CanonicalKeyIsInjective)
{
    // Length prefixes keep component boundaries unambiguous: moving
    // bytes between endpoint, params, and body must change the key.
    QueryParams none;
    QueryParams x1{{"x", "1"}};
    const std::string a = ResultCache::canonicalKey("/a", x1, "b");
    EXPECT_NE(a, ResultCache::canonicalKey("/a", none, "x1b"));
    EXPECT_NE(a, ResultCache::canonicalKey("/ax", none, "1b"));
    EXPECT_NE(a, ResultCache::canonicalKey("/a", x1, ""));
    EXPECT_NE(ResultCache::canonicalKey("/a", {{"x", "12"}}, ""),
              ResultCache::canonicalKey("/a", {{"x1", "2"}}, ""));
    // Equal inputs produce equal keys (params arrive sorted).
    EXPECT_EQ(a, ResultCache::canonicalKey("/a", x1, "b"));
}

TEST(ResultCache, HitServesIdenticalBytesAndCounts)
{
    ResultCache cache(8, 1 << 20);
    const std::string key =
        ResultCache::canonicalKey("/analyze", {}, "body");
    EXPECT_EQ(cache.get(key), nullptr);
    cache.put(key, std::make_shared<const std::string>("rendered"));
    const auto hit = cache.get(key);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, "rendered");

    const ResultCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.inserted, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.bytes, 8u);
    EXPECT_EQ(stats.served_bytes, 8u);
}

TEST(ResultCache, LruEvictionByEntryCount)
{
    ResultCache cache(2, 1 << 20);
    const auto body = [](const char *s) {
        return std::make_shared<const std::string>(s);
    };
    cache.put("k1", body("v1"));
    cache.put("k2", body("v2"));
    ASSERT_NE(cache.get("k1"), nullptr); // k1 now most recent
    cache.put("k3", body("v3"));         // evicts k2 (LRU)
    EXPECT_EQ(cache.get("k2"), nullptr);
    EXPECT_NE(cache.get("k1"), nullptr);
    EXPECT_NE(cache.get("k3"), nullptr);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ResultCache, ByteBudgetBoundsResidency)
{
    ResultCache cache(100, 10);
    cache.put("a", std::make_shared<const std::string>("123456"));
    cache.put("b", std::make_shared<const std::string>("123456"));
    // 12 resident bytes > 10: the older entry must go.
    EXPECT_EQ(cache.get("a"), nullptr);
    EXPECT_NE(cache.get("b"), nullptr);
    EXPECT_LE(cache.stats().bytes, 10u);

    // A body that alone exceeds the budget is never inserted.
    cache.put("big",
              std::make_shared<const std::string>("12345678901"));
    EXPECT_EQ(cache.get("big"), nullptr);
}

TEST(ResultCache, ZeroEntriesDisablesCaching)
{
    ResultCache cache(0, 1 << 20);
    cache.put("k", std::make_shared<const std::string>("v"));
    EXPECT_EQ(cache.get("k"), nullptr);
    EXPECT_EQ(cache.stats().inserted, 0u);
}

TEST(ResultCache, ClearDropsEntriesKeepsCounters)
{
    ResultCache cache(8, 1 << 20);
    cache.put("k", std::make_shared<const std::string>("v"));
    ASSERT_NE(cache.get("k"), nullptr);
    cache.clear();
    EXPECT_EQ(cache.get("k"), nullptr);
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().bytes, 0u);
    EXPECT_EQ(cache.stats().hits, 1u);
}

// ---------------------------------------------------------------
// Per-client admission budgets
// ---------------------------------------------------------------

TEST(Admission, PerClientBudgetsWeighted)
{
    AdmissionController admission(8, 1, {{"heavy", 2}});
    EXPECT_EQ(admission.clientBudget("alice"), 1u);
    EXPECT_EQ(admission.clientBudget("heavy"), 2u);

    EXPECT_EQ(admission.admit("alice"),
              AdmissionController::Admit::Ok);
    EXPECT_EQ(admission.admit("alice"),
              AdmissionController::Admit::FullClient);
    EXPECT_EQ(admission.rejectedClient(), 1u);

    // A weight-2 client gets twice the share; others are unaffected
    // by alice saturating hers.
    EXPECT_EQ(admission.admit("heavy"),
              AdmissionController::Admit::Ok);
    EXPECT_EQ(admission.admit("heavy"),
              AdmissionController::Admit::Ok);
    EXPECT_EQ(admission.admit("heavy"),
              AdmissionController::Admit::FullClient);
    EXPECT_EQ(admission.activeClients(), 2u);

    admission.release("alice");
    EXPECT_EQ(admission.admit("alice"),
              AdmissionController::Admit::Ok);
    admission.release("alice");
    admission.release("heavy");
    admission.release("heavy");
    EXPECT_EQ(admission.activeClients(), 0u);
    EXPECT_EQ(admission.depth(), 0u);
}

TEST(Admission, GlobalBoundRollsBackClientSlot)
{
    AdmissionController admission(1, 4);
    EXPECT_EQ(admission.admit("a"), AdmissionController::Admit::Ok);
    // The global bound rejects b, and b's per-client slot must be
    // returned — otherwise retries would leak b's budget away.
    EXPECT_EQ(admission.admit("b"),
              AdmissionController::Admit::FullGlobal);
    EXPECT_EQ(admission.rejected(), 1u);
    admission.release("a");
    EXPECT_EQ(admission.admit("b"), AdmissionController::Admit::Ok);
    admission.release("b");
    EXPECT_EQ(admission.activeClients(), 0u);
}

TEST(Admission, ZeroShareDisablesClientAccounting)
{
    AdmissionController admission(2, 0);
    EXPECT_EQ(admission.admit("a"), AdmissionController::Admit::Ok);
    EXPECT_EQ(admission.admit("a"), AdmissionController::Admit::Ok);
    EXPECT_EQ(admission.admit("a"),
              AdmissionController::Admit::FullGlobal);
    EXPECT_EQ(admission.rejectedClient(), 0u);
    admission.release("a");
    admission.release("a");
}

// ---------------------------------------------------------------
// Job store
// ---------------------------------------------------------------

/** Counting semaphore gating executor completions in tests. */
class Gate
{
  public:
    void
    release(int n = 1)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            permits_ += n;
        }
        cv_.notify_all();
    }

    void
    acquire()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return permits_ > 0; });
        --permits_;
    }

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    int permits_ = 0;
};

/** Spins until `pred` holds (bounded; fails the test on timeout). */
template <typename Pred>
void
waitUntil(Pred pred, const char *what)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(20);
    while (!pred()) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "timed out waiting for " << what;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

JobRequest
makeRequest(const std::string &body)
{
    JobRequest request;
    request.path = "/analyze";
    request.body = body;
    request.canonical = ResultCache::canonicalKey(
        request.path, request.params, request.body);
    return request;
}

/** Pure echo executor: the terminal body is a function of the
 *  request body alone (bodies starting with "fail" fail). */
JobOutcome
echoExecutor(const JobRequest &request)
{
    if (request.body.rfind("fail", 0) == 0)
        return {400, "{\"error\":\"" + request.body + "\"}"};
    return {200, "{\"echo\":\"" + request.body + "\"}"};
}

TEST(Jobs, LifecycleServesTerminalBodyVerbatim)
{
    ThreadPool pool(2);
    JobStore store(&pool, echoExecutor, 8, 0, 2);

    const JobReply accepted =
        store.submit("alice", "j1", makeRequest("x"));
    EXPECT_EQ(accepted.status, 202);
    EXPECT_EQ(accepted.body, "{\"id\":\"j1\",\"state\":\"queued\"}");
    EXPECT_FALSE(accepted.retry_after);

    waitUntil([&] { return store.stats().completed == 1; },
              "job completion");
    const JobReply done = store.poll("j1");
    EXPECT_EQ(done.status, 200);
    EXPECT_EQ(done.body, "{\"echo\":\"x\"}");
    EXPECT_FALSE(done.retry_after);

    const JobStoreStats stats = store.stats();
    EXPECT_EQ(stats.submitted, 1u);
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.resident, 1u);
    EXPECT_EQ(stats.running, 0u);
}

TEST(Jobs, FailedJobKeepsErrorStatusAndBody)
{
    ThreadPool pool(1);
    JobStore store(&pool, echoExecutor, 8, 0, 1);
    store.submit("alice", "jf", makeRequest("fail-me"));
    waitUntil([&] { return store.stats().failed == 1; },
              "job failure");
    const JobReply failed = store.poll("jf");
    EXPECT_EQ(failed.status, 400);
    EXPECT_EQ(failed.body, "{\"error\":\"fail-me\"}");
}

TEST(Jobs, ThrowingExecutorBecomesFailed500)
{
    ThreadPool pool(1);
    JobStore store(
        &pool,
        [](const JobRequest &) -> JobOutcome {
            throw std::runtime_error("executor exploded");
        },
        8, 0, 1);
    store.submit("alice", "jx", makeRequest("x"));
    waitUntil([&] { return store.stats().failed == 1; },
              "executor failure");
    const JobReply failed = store.poll("jx");
    EXPECT_EQ(failed.status, 500);
    EXPECT_NE(failed.body.find("executor exploded"),
              std::string::npos);
}

TEST(Jobs, ResubmitIsIdempotentCollisionIsExplicit)
{
    Gate gate;
    ThreadPool pool(1);
    JobStore store(
        &pool,
        [&](const JobRequest &request) -> JobOutcome {
            gate.acquire();
            return echoExecutor(request);
        },
        8, 0, 1);

    EXPECT_EQ(store.submit("alice", "j1", makeRequest("x")).status,
              202);
    // Identical resubmission (same id, same canonical): attach, do
    // not re-run — even from a different client.
    const JobReply dup = store.submit("bob", "j1", makeRequest("x"));
    EXPECT_EQ(dup.status, 200);
    EXPECT_NE(dup.body.find("\"id\":\"j1\""), std::string::npos);
    EXPECT_EQ(store.stats().resubmitted, 1u);
    EXPECT_EQ(store.stats().submitted, 1u);

    // Same id, different canonical: a hash collision must surface
    // as an error, never as someone else's result.
    const JobReply clash =
        store.submit("alice", "j1", makeRequest("y"));
    EXPECT_EQ(clash.status, 500);
    EXPECT_NE(clash.body.find("collision"), std::string::npos);

    gate.release();
    waitUntil([&] { return store.stats().completed == 1; },
              "job completion");
    EXPECT_EQ(store.poll("j1").body, "{\"echo\":\"x\"}");
}

TEST(Jobs, PerClientActiveBoundAnswers429)
{
    Gate gate;
    ThreadPool pool(1);
    JobStore store(
        &pool,
        [&](const JobRequest &request) -> JobOutcome {
            gate.acquire();
            return echoExecutor(request);
        },
        8, 1, 1);

    EXPECT_EQ(store.submit("alice", "j1", makeRequest("a")).status,
              202);
    const JobReply over =
        store.submit("alice", "j2", makeRequest("b"));
    EXPECT_EQ(over.status, 429);
    EXPECT_TRUE(over.retry_after);
    EXPECT_NE(over.body.find("alice"), std::string::npos);
    EXPECT_EQ(store.stats().rejected_client, 1u);

    // Another client is unaffected by alice's bound.
    EXPECT_EQ(store.submit("bob", "j3", makeRequest("c")).status,
              202);

    gate.release(2);
    waitUntil([&] { return store.stats().completed == 2; },
              "jobs completion");
    // Terminal jobs no longer count against the active bound.
    EXPECT_EQ(store.submit("alice", "j4", makeRequest("d")).status,
              202);
    gate.release();
    waitUntil([&] { return store.stats().completed == 3; },
              "third completion");
}

TEST(Jobs, CapacityEvictsOldestSubmittedTerminal)
{
    ThreadPool pool(1);
    JobStore store(&pool, echoExecutor, 2, 0, 1);

    store.submit("a", "j1", makeRequest("1"));
    store.submit("a", "j2", makeRequest("2"));
    waitUntil([&] { return store.stats().completed == 2; },
              "first two completions");

    // The store is at capacity with two terminal jobs; the next
    // submit evicts the oldest SUBMITTED one (j1).
    EXPECT_EQ(store.submit("a", "j3", makeRequest("3")).status, 202);
    EXPECT_EQ(store.poll("j1").status, 404);
    EXPECT_EQ(store.poll("j2").status, 200);
    EXPECT_EQ(store.stats().evicted, 1u);
}

TEST(Jobs, FullOfActiveJobsAnswers503)
{
    Gate gate;
    ThreadPool pool(1);
    JobStore store(
        &pool,
        [&](const JobRequest &request) -> JobOutcome {
            gate.acquire();
            return echoExecutor(request);
        },
        1, 0, 1);

    EXPECT_EQ(store.submit("a", "j1", makeRequest("1")).status, 202);
    const JobReply full = store.submit("a", "j2", makeRequest("2"));
    EXPECT_EQ(full.status, 503);
    EXPECT_TRUE(full.retry_after);
    EXPECT_EQ(store.stats().rejected_capacity, 1u);
    gate.release();
    waitUntil([&] { return store.stats().completed == 1; },
              "completion");
}

TEST(Jobs, CancelSemanticsByState)
{
    Gate gate;
    ThreadPool pool(1);
    std::atomic<int> started{0};
    JobStore store(
        &pool,
        [&](const JobRequest &request) -> JobOutcome {
            ++started;
            gate.acquire();
            return echoExecutor(request);
        },
        8, 0, 1);

    store.submit("a", "j1", makeRequest("1"));
    waitUntil([&] { return started.load() == 1; }, "j1 to start");
    store.submit("a", "j2", makeRequest("2")); // queued behind j1

    // Unknown id.
    EXPECT_EQ(store.cancel("nope").status, 404);
    // Queued: cancelled; its poll body says so and it stays
    // resident (a client may still ask what happened to it).
    EXPECT_EQ(store.cancel("j2").status, 200);
    EXPECT_EQ(store.poll("j2").body,
              "{\"id\":\"j2\",\"state\":\"cancelled\"}");
    // Running: refused.
    EXPECT_EQ(store.cancel("j1").status, 409);

    gate.release();
    waitUntil([&] { return store.stats().completed == 1; },
              "j1 completion");
    // Terminal: removed outright.
    EXPECT_EQ(store.cancel("j1").status, 200);
    EXPECT_EQ(store.poll("j1").status, 404);
    EXPECT_EQ(store.stats().cancelled, 1u);
}

TEST(Jobs, WeightedFairDequeueOrder)
{
    Gate gate;
    std::mutex order_mutex;
    std::vector<std::string> order;
    ThreadPool pool(1);
    JobStore store(
        &pool,
        [&](const JobRequest &request) -> JobOutcome {
            {
                std::lock_guard<std::mutex> lock(order_mutex);
                order.push_back(request.body);
            }
            gate.acquire();
            return echoExecutor(request);
        },
        16, 0, 1, {{"c", 2}});

    const auto started = [&] {
        std::lock_guard<std::mutex> lock(order_mutex);
        return order.size();
    };

    // a2 dispatches immediately (only job); the rest queue behind
    // it while the executor blocks.
    store.submit("a", "a2", makeRequest("a2"));
    waitUntil([&] { return started() == 1; }, "a2 to start");
    store.submit("a", "a3", makeRequest("a3"));
    store.submit("a", "a4", makeRequest("a4"));
    store.submit("b", "b1", makeRequest("b1"));
    store.submit("c", "c1", makeRequest("c1"));
    store.submit("c", "c2", makeRequest("c2"));

    for (std::size_t n = 2; n <= 6; ++n) {
        gate.release();
        waitUntil([&] { return started() == n; }, "next dispatch");
    }
    gate.release();
    waitUntil([&] { return store.stats().completed == 6; },
              "all completions");

    // Weighted round-robin from cursor "a\0" (a2 emptied client a):
    // b gets 1, c gets its weight of 2, then back to a's backlog —
    // one chatty client cannot starve the others.
    const std::vector<std::string> expected = {"a2", "b1", "c1",
                                               "c2", "a3", "a4"};
    std::lock_guard<std::mutex> lock(order_mutex);
    EXPECT_EQ(order, expected);
}

TEST(Jobs, ListJsonInSubmissionOrder)
{
    ThreadPool pool(1);
    JobStore store(&pool, echoExecutor, 8, 0, 1);
    store.submit("a", "jb", makeRequest("1"));
    store.submit("a", "ja", makeRequest("2"));
    waitUntil([&] { return store.stats().completed == 2; },
              "completions");
    // Submission order, not id order.
    EXPECT_EQ(store.listJson(),
              "{\"count\":2,\"jobs\":["
              "{\"id\":\"jb\",\"state\":\"done\"},"
              "{\"id\":\"ja\",\"state\":\"done\"}]}");
}

TEST(Jobs, ShutdownCancelsQueuedKeepsFinished)
{
    Gate gate;
    std::atomic<int> started{0};
    ThreadPool pool(1);
    JobStore store(
        &pool,
        [&](const JobRequest &request) -> JobOutcome {
            ++started;
            gate.acquire();
            return echoExecutor(request);
        },
        8, 0, 1);

    store.submit("a", "j1", makeRequest("1"));
    waitUntil([&] { return started.load() == 1; }, "j1 to start");
    store.submit("a", "j2", makeRequest("2"));

    // Let the running job finish shortly after the drain begins;
    // shutdown must block until it does.
    std::thread releaser([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        gate.release();
    });
    store.shutdown();
    releaser.join();

    EXPECT_EQ(store.poll("j1").body, "{\"echo\":\"1\"}");
    EXPECT_EQ(store.poll("j2").body,
              "{\"id\":\"j2\",\"state\":\"cancelled\"}");
    const JobReply rejected =
        store.submit("a", "j3", makeRequest("3"));
    EXPECT_EQ(rejected.status, 503);
    EXPECT_NE(rejected.body.find("draining"), std::string::npos);
}

TEST(Jobs, ObserversSeeLifecycleEventsWithTraceAndTimings)
{
    ThreadPool pool(1);
    JobStore store(&pool, echoExecutor, 8, 1, 1);

    /** One copied observation (views die with the callback). */
    struct Seen
    {
        std::string event, id, client, endpoint, trace;
        int status;
        bool has_queue_wait, has_run;
    };
    std::mutex seen_mutex;
    std::vector<Seen> seen;
    std::size_t gauge_calls = 0;
    store.setObservers(
        [&](const JobEventInfo &info) {
            std::lock_guard<std::mutex> lock(seen_mutex);
            seen.push_back({std::string(info.event),
                            std::string(info.id),
                            std::string(info.client),
                            std::string(info.endpoint),
                            std::string(info.trace), info.status,
                            info.has_queue_wait, info.has_run});
        },
        [&](std::size_t, std::size_t, std::size_t, std::uint64_t) {
            std::lock_guard<std::mutex> lock(seen_mutex);
            ++gauge_calls;
        });

    const JobReply accepted =
        store.submit("alice", "j1", makeRequest("x"), "trace-7");
    EXPECT_EQ(accepted.trace_id, "trace-7");
    waitUntil([&] { return store.stats().completed == 1; },
              "job completion");

    // Polls and resubmits echo the FIRST submitter's trace id.
    EXPECT_EQ(store.poll("j1").trace_id, "trace-7");
    EXPECT_EQ(store.submit("bob", "j1", makeRequest("x"), "trace-9")
                  .trace_id,
              "trace-7");

    // A second job for alice while her bound is 1... needs an active
    // job, so exercise the rejection with a queued-forever setup
    // instead: per_client_active=1 counts ACTIVE jobs, and j1 is
    // terminal, so submit two fresh jobs back to back.
    store.submit("carol", "j2", makeRequest("y"), "t2");
    store.submit("carol", "j3", makeRequest("z"), "t3");
    waitUntil([&] { return store.stats().rejected_client == 1 ||
                           store.stats().completed == 3; },
              "carol's second submit");

    std::vector<Seen> copy;
    {
        std::lock_guard<std::mutex> lock(seen_mutex);
        copy = seen;
    }
    const auto find = [&](const char *event, const char *id) {
        for (const Seen &s : copy)
            if (s.event == event && s.id == id)
                return &s;
        return static_cast<const Seen *>(nullptr);
    };

    const Seen *submitted = find("submitted", "j1");
    ASSERT_NE(submitted, nullptr);
    EXPECT_EQ(submitted->client, "alice");
    EXPECT_EQ(submitted->endpoint, "analyze");
    EXPECT_EQ(submitted->trace, "trace-7");
    EXPECT_EQ(submitted->status, 0);

    const Seen *started = find("started", "j1");
    ASSERT_NE(started, nullptr);
    EXPECT_TRUE(started->has_queue_wait);
    EXPECT_FALSE(started->has_run);

    const Seen *completed = find("completed", "j1");
    ASSERT_NE(completed, nullptr);
    EXPECT_EQ(completed->status, 200);
    EXPECT_TRUE(completed->has_run);
    EXPECT_EQ(completed->trace, "trace-7");

    const Seen *resubmitted = find("resubmitted", "j1");
    ASSERT_NE(resubmitted, nullptr);
    // The duplicate submit is attributed to the job's owner (the
    // FIRST submitter), and the job keeps that submitter's trace.
    EXPECT_EQ(resubmitted->client, "alice");
    EXPECT_EQ(resubmitted->trace, "trace-7");

    EXPECT_GT(gauge_calls, 0u);
}

TEST(Jobs, FailureAndEvictionEventsCarryTerminalStatus)
{
    ThreadPool pool(1);
    JobStore store(&pool, echoExecutor, 2, 0, 1);

    std::mutex seen_mutex;
    std::vector<std::pair<std::string, int>> seen;
    store.setObservers(
        [&](const JobEventInfo &info) {
            std::lock_guard<std::mutex> lock(seen_mutex);
            seen.emplace_back(std::string(info.event), info.status);
        },
        nullptr);

    store.submit("a", "f1", makeRequest("fail-1"));
    waitUntil([&] { return store.stats().failed == 1; }, "failure");
    store.submit("a", "ok1", makeRequest("1"));
    waitUntil([&] { return store.stats().completed == 1; }, "ok1");
    // Capacity 2 with two terminal residents: the next submit
    // evicts the oldest terminal (f1, status 400).
    store.submit("a", "ok2", makeRequest("2"));
    waitUntil([&] { return store.stats().evicted == 1; },
              "eviction");

    std::lock_guard<std::mutex> lock(seen_mutex);
    bool saw_failed = false, saw_evicted = false;
    for (const auto &[event, status] : seen) {
        if (event == "failed") {
            EXPECT_EQ(status, 400);
            saw_failed = true;
        }
        if (event == "evicted") {
            EXPECT_EQ(status, 400); // f1's terminal status
            saw_evicted = true;
        }
    }
    EXPECT_TRUE(saw_failed);
    EXPECT_TRUE(saw_evicted);
}

/**
 * Determinism across worker-thread counts: one seeded script of
 * submit / duplicate-submit / poll / cancel-after-drain operations
 * with periodic full drains runs at 1 and at 4 pool threads;
 * terminal job bodies, the resident set, and every deterministic
 * counter must match exactly. Drains make each capacity decision
 * script-determined: at every submit the terminal-resident set (the
 * eviction candidates) is fixed by the script, not by completion
 * timing.
 */
struct ScriptResult
{
    std::string list;
    std::map<std::string, std::pair<int, std::string>> terminal;
    std::uint64_t evicted = 0;
    std::uint64_t submitted = 0;
    std::uint64_t resubmitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;

    bool
    operator==(const ScriptResult &other) const
    {
        return list == other.list && terminal == other.terminal &&
               evicted == other.evicted &&
               submitted == other.submitted &&
               resubmitted == other.resubmitted &&
               completed == other.completed &&
               failed == other.failed;
    }
};

ScriptResult
runJobScript(std::size_t pool_threads, std::uint32_t seed)
{
    ThreadPool pool(pool_threads);
    JobStore store(&pool, echoExecutor, 8, 0,
                   std::max<std::size_t>(1, pool_threads));

    const auto drain = [&] {
        const auto idle = [&] {
            const JobStoreStats s = store.stats();
            return s.queued == 0 && s.running == 0;
        };
        waitUntil(idle, "drain");
    };

    const auto bodyFor = [](int n) {
        return (n % 7 == 6 ? "fail-" : "req-") + std::to_string(n);
    };

    std::mt19937 rng(seed);
    std::vector<std::string> submitted_ids;
    int next_id = 0;
    for (int op = 0; op < 200; ++op) {
        const std::uint32_t pick = rng() % 10;
        if (pick < 5 || submitted_ids.empty()) {
            // Fresh submission; every 7th request fails, so both
            // terminal states appear in the comparison.
            const std::string id = "job-" + std::to_string(next_id);
            store.submit("client-" + std::to_string(rng() % 3), id,
                         makeRequest(bodyFor(next_id)));
            submitted_ids.push_back(id);
            ++next_id;
        } else if (pick < 7) {
            // Duplicate submission of a (possibly evicted) id: the
            // canonical key matches the original, so this either
            // attaches or resurrects deterministically.
            const std::size_t n = rng() % submitted_ids.size();
            store.submit("client-" + std::to_string(rng() % 3),
                         submitted_ids[n],
                         makeRequest(bodyFor(static_cast<int>(n))));
        } else if (pick < 9) {
            // Poll exercises the state machine; mid-flight states
            // are racy by design, so the result is not recorded.
            store.poll(submitted_ids[rng() % submitted_ids.size()]);
        } else {
            // Cancel only after a drain: the target is terminal (or
            // evicted), so the outcome is script-determined.
            drain();
            store.cancel(
                submitted_ids[rng() % submitted_ids.size()]);
        }
        // Drain often enough that a batch can never submit more
        // jobs than pre-batch terminal residents + free capacity:
        // every eviction then deterministically hits a PRE-batch
        // terminal (lowest seq), never a racing same-batch job.
        if (op % 6 == 5)
            drain();
    }
    drain();

    ScriptResult result;
    result.list = store.listJson();
    for (const std::string &id : submitted_ids) {
        const JobReply reply = store.poll(id);
        if (reply.status != 404)
            result.terminal[id] = {reply.status, reply.body};
    }
    const JobStoreStats stats = store.stats();
    result.evicted = stats.evicted;
    result.submitted = stats.submitted;
    result.resubmitted = stats.resubmitted;
    result.completed = stats.completed;
    result.failed = stats.failed;
    return result;
}

TEST(Jobs, DeterministicAcrossThreadCounts)
{
    for (const std::uint32_t seed : {11u, 29u}) {
        const ScriptResult one = runJobScript(1, seed);
        const ScriptResult four = runJobScript(4, seed);
        EXPECT_TRUE(one == four)
            << "seed " << seed << " diverged:\n 1-thread: "
            << one.list << "\n 4-thread: " << four.list;
        EXPECT_GT(one.evicted, 0u) << "script never hit capacity";
    }
}

TEST(Jobs, InlineExecutionWithZeroPoolWorkers)
{
    // A zero-worker pool runs submitted tasks inline on the caller:
    // the store must dispatch without deadlocking and deliver the
    // same bodies (this is also the drain path for late tasks).
    ThreadPool pool(0);
    JobStore store(&pool, echoExecutor, 8, 0, 1);
    EXPECT_EQ(store.submit("a", "j1", makeRequest("x")).status, 202);
    EXPECT_EQ(store.poll("j1").status, 200);
    EXPECT_EQ(store.poll("j1").body, "{\"echo\":\"x\"}");
}

} // namespace
} // namespace serve
} // namespace maestro
