/**
 * @file
 * Tests for the shared JSON writer: structural comma/colon handling,
 * string escaping, number rendering (to_chars round-trip, fixed,
 * scientific), non-finite handling, and misuse panics. The server's
 * byte-identical-response guarantee rests on this writer producing
 * the same bytes for the same values, so determinism is asserted
 * explicitly.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "src/common/json.hh"

namespace maestro
{
namespace
{

TEST(JsonWriter, EmptyObjectAndArray)
{
    {
        JsonWriter w;
        w.beginObject().endObject();
        EXPECT_EQ(w.str(), "{}");
    }
    {
        JsonWriter w;
        w.beginArray().endArray();
        EXPECT_EQ(w.str(), "[]");
    }
}

TEST(JsonWriter, ObjectCommasAndColons)
{
    JsonWriter w;
    w.beginObject();
    w.key("a").value(1);
    w.key("b").value("two");
    w.key("c").value(true);
    w.key("d").null();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"a\":1,\"b\":\"two\",\"c\":true,\"d\":null}");
}

TEST(JsonWriter, ArrayCommas)
{
    JsonWriter w;
    w.beginArray();
    w.value(1).value(2).value(3);
    w.endArray();
    EXPECT_EQ(w.str(), "[1,2,3]");
}

TEST(JsonWriter, NestedStructures)
{
    JsonWriter w;
    w.beginObject();
    w.key("rows").beginArray();
    w.beginObject().key("x").value(1).endObject();
    w.beginObject().key("x").value(2).endObject();
    w.endArray();
    w.key("meta").beginObject().key("n").value(2).endObject();
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"rows\":[{\"x\":1},{\"x\":2}],"
              "\"meta\":{\"n\":2}}");
}

TEST(JsonWriter, StringEscaping)
{
    JsonWriter w;
    w.value("quote\" backslash\\ tab\t newline\n cr\r "
            "bell\b feed\f");
    EXPECT_EQ(w.str(),
              "\"quote\\\" backslash\\\\ tab\\t newline\\n cr\\r "
              "bell\\b feed\\f\"");
}

TEST(JsonWriter, ControlCharactersEscapeAsUnicode)
{
    std::string s;
    s.push_back('\x01');
    s.push_back('\x1f');
    JsonWriter w;
    w.value(s);
    EXPECT_EQ(w.str(), "\"\\u0001\\u001f\"");
}

TEST(JsonWriter, Utf8PassesThrough)
{
    JsonWriter w;
    w.value("caf\xc3\xa9");
    EXPECT_EQ(w.str(), "\"caf\xc3\xa9\"");
}

TEST(JsonWriter, IntegerExtremes)
{
    JsonWriter w;
    w.beginArray();
    w.value(std::numeric_limits<std::int64_t>::min());
    w.value(std::numeric_limits<std::int64_t>::max());
    w.value(std::numeric_limits<std::uint64_t>::max());
    w.value(-1);
    w.value(0u);
    w.endArray();
    EXPECT_EQ(w.str(),
              "[-9223372036854775808,9223372036854775807,"
              "18446744073709551615,-1,0]");
}

TEST(JsonWriter, DoubleShortestRoundTrip)
{
    JsonWriter w;
    w.beginArray();
    w.value(0.1);
    w.value(1.0);
    w.value(-2.5e300);
    w.endArray();
    const std::string out = w.str();
    // to_chars shortest form must parse back to the exact value.
    EXPECT_NE(out.find("0.1"), std::string::npos);
    EXPECT_EQ(std::stod(out.substr(1)), 0.1);
}

TEST(JsonWriter, DoubleDeterminism)
{
    // Same value -> same bytes, every time (byte-identity contract).
    const double v = 1234.56789 / 3.0;
    std::string first;
    for (int i = 0; i < 4; ++i) {
        JsonWriter w;
        w.value(v);
        if (i == 0)
            first = w.str();
        else
            EXPECT_EQ(w.str(), first);
    }
    EXPECT_EQ(std::stod(first), v);
}

TEST(JsonWriter, NonFiniteRendersNull)
{
    JsonWriter w;
    w.beginArray();
    w.value(std::numeric_limits<double>::quiet_NaN());
    w.value(std::numeric_limits<double>::infinity());
    w.value(-std::numeric_limits<double>::infinity());
    w.fixed(std::numeric_limits<double>::quiet_NaN(), 2);
    w.sci(std::numeric_limits<double>::infinity(), 3);
    w.endArray();
    EXPECT_EQ(w.str(), "[null,null,null,null,null]");
}

TEST(JsonWriter, FixedAndScientificNotation)
{
    JsonWriter w;
    w.beginArray();
    w.fixed(3.14159, 2);
    w.fixed(2.0, 0);
    w.sci(12345.678, 3);
    w.endArray();
    EXPECT_EQ(w.str(), "[3.14,2,1.235e+04]");
}

TEST(JsonWriter, TopLevelScalar)
{
    JsonWriter w;
    w.value("alone");
    EXPECT_EQ(w.str(), "\"alone\"");
}

TEST(JsonWriter, AppendEscapedStatic)
{
    std::string out = "x=";
    JsonWriter::appendEscaped(out, "a\"b");
    EXPECT_EQ(out, "x=\"a\\\"b\"");
}

TEST(JsonWriterDeathTest, MisusePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            JsonWriter w;
            w.beginObject();
            w.value(1); // value without key()
        },
        "json:");
    EXPECT_DEATH(
        {
            JsonWriter w;
            w.beginObject();
            w.endArray(); // mismatched close
        },
        "json:");
    EXPECT_DEATH(
        {
            JsonWriter w;
            w.beginObject();
            w.str(); // incomplete document
        },
        "json:");
    EXPECT_DEATH(
        {
            JsonWriter w;
            w.key("k"); // key outside object
        },
        "json:");
    EXPECT_DEATH(
        {
            JsonWriter w;
            w.value(1);
            w.value(2); // second top-level value
        },
        "json:");
}

} // namespace
} // namespace maestro
