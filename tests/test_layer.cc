/**
 * @file
 * Unit tests for the layer descriptor and the model zoo.
 */

#include <gtest/gtest.h>

#include "src/common/error.hh"
#include "src/model/zoo.hh"

namespace maestro
{
namespace
{

DimMap<Count>
dims(Count n, Count k, Count c, Count y, Count x, Count r, Count s)
{
    DimMap<Count> d;
    d[Dim::N] = n;
    d[Dim::K] = k;
    d[Dim::C] = c;
    d[Dim::Y] = y;
    d[Dim::X] = x;
    d[Dim::R] = r;
    d[Dim::S] = s;
    return d;
}

TEST(Layer, OutputSizeWithPadding)
{
    Layer l("conv", OpType::Conv2D, dims(1, 64, 3, 224, 224, 3, 3));
    l.padding(1);
    EXPECT_EQ(l.outputY(), 224);
    EXPECT_EQ(l.outputX(), 224);
    EXPECT_EQ(l.effectiveDim(Dim::Y), 226);
}

TEST(Layer, OutputSizeWithStride)
{
    Layer l("conv", OpType::Conv2D, dims(1, 96, 3, 227, 227, 11, 11));
    l.stride(4);
    EXPECT_EQ(l.outputY(), 55); // AlexNet CONV1
}

TEST(Layer, MacCountDenseConv)
{
    Layer l("conv", OpType::Conv2D, dims(1, 64, 3, 224, 224, 3, 3));
    l.padding(1);
    // N*K*C*Y'*X'*R*S = 64*3*224*224*9
    EXPECT_DOUBLE_EQ(l.macs(), 64.0 * 3 * 224 * 224 * 9);
}

TEST(Layer, MacCountDepthwiseDropsK)
{
    Layer l("dw", OpType::DepthwiseConv, dims(1, 1, 32, 112, 112, 3, 3));
    l.padding(1);
    EXPECT_DOUBLE_EQ(l.macs(), 32.0 * 112 * 112 * 9);
}

TEST(Layer, TensorVolumes)
{
    Layer l("conv", OpType::Conv2D, dims(1, 4, 6, 8, 8, 3, 3));
    EXPECT_EQ(l.tensorVolume(TensorKind::Weight), 4 * 6 * 3 * 3);
    EXPECT_EQ(l.tensorVolume(TensorKind::Input), 6 * 8 * 8);
    EXPECT_EQ(l.tensorVolume(TensorKind::Output), 4 * 6 * 6);
}

TEST(Layer, DepthwiseOutputVolumeCoupledToC)
{
    Layer l("dw", OpType::DepthwiseConv, dims(1, 1, 32, 10, 10, 3, 3));
    EXPECT_EQ(l.tensorVolume(TensorKind::Output), 32 * 8 * 8);
    EXPECT_EQ(l.tensorVolume(TensorKind::Weight), 32 * 9);
}

TEST(Layer, TransposedConvUpsamples)
{
    // DCGAN-style: 4 -> 8 with 4x4 stride-2 pad-1 (effective pad 2).
    Layer l("tr", OpType::TransposedConv, dims(1, 512, 1024, 4, 4, 4, 4));
    l.stride(2).padding(2).inputDensity(0.25);
    EXPECT_EQ(l.effectiveDim(Dim::Y), (4 - 1) * 2 + 1 + 2 * 2);
    EXPECT_EQ(l.outputY(), 8);
}

TEST(Layer, OperatorClassification)
{
    Layer early("e", OpType::Conv2D, dims(1, 64, 3, 224, 224, 3, 3));
    EXPECT_EQ(early.operatorClass(), OperatorClass::EarlyConv);

    // Paper footnote: late when C > Y.
    Layer late("l", OpType::Conv2D, dims(1, 512, 512, 14, 14, 3, 3));
    EXPECT_EQ(late.operatorClass(), OperatorClass::LateConv);

    Layer pw("p", OpType::Conv2D, dims(1, 128, 64, 56, 56, 1, 1));
    EXPECT_EQ(pw.operatorClass(), OperatorClass::Pointwise);

    Layer dw("d", OpType::DepthwiseConv, dims(1, 1, 32, 112, 112, 3, 3));
    EXPECT_EQ(dw.operatorClass(), OperatorClass::Depthwise);

    Layer fc("f", OpType::FullyConnected, dims(1, 1000, 4096, 1, 1, 1, 1));
    EXPECT_EQ(fc.operatorClass(), OperatorClass::FullyConnected);
}

TEST(Layer, ValidationRejectsBadShapes)
{
    Layer zero("z", OpType::Conv2D, dims(1, 0, 3, 8, 8, 3, 3));
    EXPECT_THROW(zero.validate(), Error);

    Layer filter_too_big("f", OpType::Conv2D, dims(1, 4, 3, 2, 2, 3, 3));
    EXPECT_THROW(filter_too_big.validate(), Error);

    Layer bad_density("d", OpType::Conv2D, dims(1, 4, 3, 8, 8, 3, 3));
    bad_density.inputDensity(0.0);
    EXPECT_THROW(bad_density.validate(), Error);
}

TEST(Network, DuplicateLayerNameRejected)
{
    Network net("n");
    net.addLayer(Layer("a", OpType::Conv2D, dims(1, 4, 3, 8, 8, 3, 3)));
    EXPECT_THROW(
        net.addLayer(Layer("a", OpType::Conv2D, dims(1, 4, 3, 8, 8, 3, 3))),
        Error);
}

TEST(Network, ResidualLinkValidation)
{
    Network net("n");
    net.addLayer(Layer("a", OpType::Conv2D, dims(1, 4, 3, 8, 8, 3, 3)));
    net.addLayer(Layer("b", OpType::Conv2D, dims(1, 4, 4, 6, 6, 3, 3)));
    EXPECT_NO_THROW(net.addResidualLink(0, 1));
    EXPECT_THROW(net.addResidualLink(1, 0), Error);
    EXPECT_THROW(net.addResidualLink(0, 5), Error);
}

TEST(Zoo, Vgg16Shape)
{
    const Network net = zoo::vgg16();
    EXPECT_EQ(net.layers().size(), 16u); // 13 conv + 3 FC
    // Known MAC total: ~15.3G for the convs + ~124M FC.
    EXPECT_NEAR(net.totalMacs(), 15.5e9, 0.5e9);
    EXPECT_EQ(net.layer("CONV11").dim(Dim::K), 512);
}

TEST(Zoo, AlexnetConv1)
{
    const Network net = zoo::alexnet();
    const Layer &c1 = net.layer("CONV1");
    EXPECT_EQ(c1.outputY(), 55);
    EXPECT_NEAR(c1.macs(), 105.0e6, 1e6);
}

TEST(Zoo, Resnet50HasResidualLinks)
{
    const Network net = zoo::resnet50();
    EXPECT_EQ(net.residualLinks().size(), 16u); // 3+4+6+3 bottlenecks
    // ~4 GMACs nominal; our constant-resolution stages land nearby.
    EXPECT_GT(net.totalMacs(), 3.0e9);
    EXPECT_LT(net.totalMacs(), 8.0e9);
}

TEST(Zoo, ResnextGroupedConvs)
{
    const Network net = zoo::resnext50();
    const Layer &grouped = net.layer("S2B1_3x3");
    EXPECT_EQ(grouped.groupsVal(), 32);
    EXPECT_EQ(grouped.dim(Dim::C), 4); // per-group channels (128/32)
}

TEST(Zoo, MobilenetHasDepthwise)
{
    const Network net = zoo::mobilenetV2();
    int dw = 0;
    int pw = 0;
    for (const auto &l : net.layers()) {
        if (l.operatorClass() == OperatorClass::Depthwise)
            ++dw;
        if (l.operatorClass() == OperatorClass::Pointwise)
            ++pw;
    }
    EXPECT_EQ(dw, 17);
    EXPECT_GT(pw, 20);
}

TEST(Zoo, UnetHasTransposedConvs)
{
    const Network net = zoo::unet();
    int tr = 0;
    for (const auto &l : net.layers()) {
        if (l.operatorClass() == OperatorClass::Transposed)
            ++tr;
    }
    EXPECT_EQ(tr, 4);
    EXPECT_EQ(net.layer("DOWN1").dim(Dim::Y), 572);
}

TEST(Zoo, LstmGatesAreSequenceBatchedGemms)
{
    const Network net = zoo::lstm(1024, 512, 16);
    EXPECT_EQ(net.layers().size(), 4u);
    const Layer &gate = net.layer("GATE_I");
    EXPECT_EQ(gate.type(), OpType::FullyConnected);
    EXPECT_EQ(gate.dim(Dim::N), 16);
    EXPECT_EQ(gate.dim(Dim::K), 1024);
    EXPECT_EQ(gate.dim(Dim::C), 1536);
    // MACs: seq x 4 gates x hidden x (hidden + input).
    EXPECT_DOUBLE_EQ(net.totalMacs(), 16.0 * 4 * 1024 * 1536);
}

TEST(Zoo, AllModelsValidateAndByName)
{
    for (const char *name : {"vgg16", "alexnet", "resnet50", "resnext50",
                             "mobilenetv2", "unet", "dcgan", "lstm"}) {
        const Network net = zoo::byName(name);
        EXPECT_FALSE(net.layers().empty()) << name;
        for (const auto &l : net.layers())
            EXPECT_NO_THROW(l.validate()) << net.name() << ":" << l.name();
    }
    EXPECT_THROW(zoo::byName("lenet"), Error);
}

} // namespace
} // namespace maestro
