/**
 * @file
 * Mapper v2 property tests: the pruned decoupled search must match
 * the exhaustive oracle (MapperOptions::exact) byte-for-byte in its
 * bests, and must be byte-identical at any thread count — these
 * tests drive sampled layers x objectives x {1, 4} threads and
 * compare every field with EXPECT_EQ (no tolerances), mirroring
 * tests/test_dse_equivalence.cc.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/common/error.hh"
#include "src/dse/design_space.hh"
#include "src/mapper/mapper.hh"
#include "src/model/zoo.hh"
#include "src/serve/handlers.hh"

namespace maestro
{
namespace
{

DimMap<Count>
dims(Count n, Count k, Count c, Count y, Count x, Count r, Count s)
{
    DimMap<Count> d;
    d[Dim::N] = n;
    d[Dim::K] = k;
    d[Dim::C] = c;
    d[Dim::Y] = y;
    d[Dim::X] = x;
    d[Dim::R] = r;
    d[Dim::S] = s;
    return d;
}

/** A trimmed space that keeps the exhaustive oracle tractable while
 *  still exercising clusters, ladder clipping, and both prunes. */
mapper::SpaceOptions
smallSpace()
{
    mapper::SpaceOptions space;
    space.cluster_sizes = {1, 4};
    space.channel_tiles = {1, 8};
    space.activation_tiles = {1, 2};
    return space;
}

/** Layers spanning the operator classes (small extents for speed). */
std::vector<Layer>
sampleLayers()
{
    std::vector<Layer> layers;
    layers.push_back(
        Layer("conv", OpType::Conv2D, dims(1, 16, 8, 18, 18, 3, 3)));
    layers.push_back(Layer("dwconv", OpType::DepthwiseConv,
                           dims(1, 1, 16, 14, 14, 3, 3)));
    layers.push_back(
        Layer("fc", OpType::FullyConnected, dims(1, 32, 24, 1, 1, 1, 1)));
    Layer strided("strided", OpType::Conv2D, dims(1, 8, 4, 17, 17, 5, 5));
    strided.stride(2);
    layers.push_back(strided);
    return layers;
}

void
expectSameMapping(const mapper::MappedDataflow &a,
                  const mapper::MappedDataflow &b, const char *what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.dataflow.name(), b.dataflow.name());
    EXPECT_EQ(a.dataflow.toString(), b.dataflow.toString());
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.edp, b.edp);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.objective_value, b.objective_value);
}

constexpr mapper::Objective kObjectives[] = {
    mapper::Objective::Runtime,
    mapper::Objective::Energy,
    mapper::Objective::Edp,
};

TEST(MapperEquivalence, PrunedBestsMatchExhaustiveOracle)
{
    const Analyzer analyzer(AcceleratorConfig::paperStudy());
    for (const Layer &layer : sampleLayers()) {
        for (mapper::Objective objective : kObjectives) {
            SCOPED_TRACE(layer.name());
            mapper::MapperOptions pruned;
            pruned.space = smallSpace();
            mapper::MapperOptions exact = pruned;
            exact.exact = true;

            const mapper::MapperResult p =
                mapLayer(analyzer, layer, objective, pruned);
            const mapper::MapperResult e =
                mapLayer(analyzer, layer, objective, exact);

            // The prunes must remove work, never candidates the
            // oracle would rank first.
            EXPECT_EQ(p.stats.generated, e.stats.generated);
            EXPECT_GT(p.stats.pruned_symmetry, 0u);
            EXPECT_LT(p.stats.evaluated, e.stats.evaluated);
            expectSameMapping(p.best(), e.best(), "best vs oracle");
        }
    }
}

TEST(MapperEquivalence, CapacityCutMatchesOracleUnderEnforcement)
{
    // A small L1 makes the conservative pre-bind cut fire; the best
    // must still match the oracle, which rejects via the analyzer's
    // own fits_l1 after evaluation.
    AcceleratorConfig config = AcceleratorConfig::paperStudy();
    config.l1_bytes = 512;
    const Analyzer analyzer(config);
    std::size_t total_capacity_pruned = 0;
    for (const Layer &layer : sampleLayers()) {
        SCOPED_TRACE(layer.name());
        mapper::MapperOptions pruned;
        pruned.space = smallSpace();
        pruned.enforce_l1_capacity = true;
        mapper::MapperOptions exact = pruned;
        exact.exact = true;

        const mapper::MapperResult p = mapLayer(
            analyzer, layer, mapper::Objective::Runtime, pruned);
        const mapper::MapperResult e = mapLayer(
            analyzer, layer, mapper::Objective::Runtime, exact);
        total_capacity_pruned += p.stats.pruned_capacity;
        expectSameMapping(p.best(), e.best(), "best vs oracle");
    }
    // The cut must actually fire somewhere on the corpus (layers with
    // working sets already under 512 bytes legitimately skip it).
    EXPECT_GT(total_capacity_pruned, 0u);
}

TEST(MapperEquivalence, ThreadCountIsByteInvariant)
{
    const Analyzer analyzer(AcceleratorConfig::paperStudy());
    for (const Layer &layer : sampleLayers()) {
        for (mapper::Objective objective : kObjectives) {
            SCOPED_TRACE(layer.name());
            mapper::MapperOptions serial;
            serial.space = smallSpace();
            serial.num_threads = 1;
            mapper::MapperOptions threaded = serial;
            threaded.num_threads = 4;

            const mapper::MapperResult a =
                mapLayer(analyzer, layer, objective, serial);
            const mapper::MapperResult b =
                mapLayer(analyzer, layer, objective, threaded);
            ASSERT_EQ(a.ranked.size(), b.ranked.size());
            for (std::size_t i = 0; i < a.ranked.size(); ++i) {
                expectSameMapping(a.ranked[i], b.ranked[i], "ranked");
                EXPECT_EQ(a.ranked[i].index, b.ranked[i].index);
            }
            EXPECT_EQ(a.stats.evaluated, b.stats.evaluated);
            EXPECT_EQ(a.stats.pruned_symmetry, b.stats.pruned_symmetry);
        }
    }
}

TEST(Mapper, SymmetryAccountingAndCoverage)
{
    const Analyzer analyzer(AcceleratorConfig::paperStudy());
    const Network net = zoo::vgg16();
    mapper::MapperOptions options;
    options.space = smallSpace();
    const mapper::MapperResult res =
        mapLayer(analyzer, net.layer("CONV11"),
                 mapper::Objective::Runtime, options);

    // Coverage accounts the declared (7!-order) space; the canonical
    // enumeration is orders of magnitude smaller.
    EXPECT_GT(res.stats.covered,
              static_cast<double>(res.stats.generated) * 100.0);
    EXPECT_EQ(res.stats.evaluated + res.stats.pruned_symmetry +
                  res.stats.pruned_capacity,
              res.stats.generated);
    EXPECT_GT(res.stats.per_second, 0.0);
    ASSERT_FALSE(res.ranked.empty());
    for (const mapper::MappedDataflow &md : res.ranked)
        EXPECT_GT(md.runtime, 0.0) << md.dataflow.name();
    // Ranked ascending by objective, index tiebreak.
    for (std::size_t i = 1; i < res.ranked.size(); ++i)
        EXPECT_LE(res.ranked[i - 1].objective_value,
                  res.ranked[i].objective_value);
}

TEST(Mapper, TopKBoundsRankedSize)
{
    const Analyzer analyzer(AcceleratorConfig::paperStudy());
    mapper::MapperOptions options;
    options.space = smallSpace();
    options.top_k = 3;
    const mapper::MapperResult res =
        mapLayer(analyzer, sampleLayers()[0],
                 mapper::Objective::Edp, options);
    EXPECT_EQ(res.ranked.size(), 3u);
}

TEST(Mapper, NetworkModeDedupsShapesAndBoundsAdaptive)
{
    Network net("tiny");
    net.addLayer(
        Layer("conv_a", OpType::Conv2D, dims(1, 16, 8, 18, 18, 3, 3)));
    net.addLayer(
        Layer("conv_b", OpType::Conv2D, dims(1, 16, 8, 18, 18, 3, 3)));
    net.addLayer(
        Layer("fc", OpType::FullyConnected, dims(1, 32, 24, 1, 1, 1, 1)));

    const Analyzer analyzer(AcceleratorConfig::paperStudy());
    mapper::MapperOptions options;
    options.space = smallSpace();
    const mapper::NetworkMapperResult res = mapNetwork(
        analyzer, net, mapper::Objective::Runtime, options);

    ASSERT_EQ(res.layers.size(), 3u);
    EXPECT_EQ(res.unique_shapes, 2u);
    EXPECT_FALSE(res.layers[0].reused);
    EXPECT_TRUE(res.layers[1].reused);
    EXPECT_FALSE(res.layers[2].reused);
    // The reused layer inherits its representative's winner.
    EXPECT_EQ(res.layers[0].best.dataflow.toString(),
              res.layers[1].best.dataflow.toString());
    // Per-layer bests lower-bound any single dataflow.
    EXPECT_GE(res.best_single.objective_value, res.adaptive_total);
    EXPECT_GT(res.best_single.runtime, 0.0);
    // Coverage counts all three layers; evaluation only two searches.
    EXPECT_EQ(res.stats.covered, res.layers[0].stats.covered +
                                     res.layers[1].stats.covered +
                                     res.layers[2].stats.covered);
}

TEST(Mapper, JointModeFindsValidDesign)
{
    const Analyzer analyzer(AcceleratorConfig::paperStudy());
    mapper::MapperOptions options;
    options.space = smallSpace();
    options.joint_dataflows = 2;
    const mapper::JointMapperResult res = mapJoint(
        analyzer, sampleLayers()[0], mapper::Objective::Edp,
        dse::DesignSpace::small(), dse::DseOptions(), options);

    EXPECT_EQ(res.designs.size(), 2u);
    EXPECT_TRUE(res.best.point.valid);
    EXPECT_GT(res.explored_points, 0.0);
    EXPECT_LE(res.best.objective_value,
              res.designs.front().objective_value);
    // The joint winner's hardware point respects the budgets.
    EXPECT_GT(res.best.point.num_pes, 0u);
    EXPECT_GT(res.best.point.edp, 0.0);
}

TEST(Mapper, RankDataflowsRejectsAndOrdersDeterministically)
{
    const Analyzer analyzer(AcceleratorConfig::paperStudy());
    const Layer layer = sampleLayers()[0];
    mapper::MapperOptions options;
    options.space = smallSpace();
    const mapper::MapperResult res = mapLayer(
        analyzer, layer, mapper::Objective::Runtime, options);
    ASSERT_GE(res.ranked.size(), 2u);

    std::vector<Dataflow> candidates;
    for (const mapper::MappedDataflow &md : res.ranked)
        candidates.push_back(md.dataflow);
    std::size_t rejected = 0;
    const std::vector<mapper::MappedDataflow> ranked =
        mapper::rankDataflows(analyzer, layer,
                              mapper::Objective::Runtime, candidates,
                              candidates.size(), false, 1, &rejected);
    EXPECT_EQ(rejected, 0u);
    ASSERT_EQ(ranked.size(), res.ranked.size());
    for (std::size_t i = 0; i < ranked.size(); ++i)
        expectSameMapping(ranked[i], res.ranked[i], "batch vs engine");
}

/** Two-layer DSL body (distinct shapes) for handler tests. */
const char *kServeDsl = "Network tiny {\n"
                        "  Layer conv {\n"
                        "    Type: CONV;\n"
                        "    Dimensions { K: 8; C: 4; R: 3; S: 3; "
                        "Y: 16; X: 16; }\n"
                        "  }\n"
                        "  Layer fc {\n"
                        "    Type: FC;\n"
                        "    Dimensions { K: 16; C: 8; R: 1; S: 1; "
                        "Y: 1; X: 1; }\n"
                        "  }\n"
                        "}\n";

serve::RequestInputs
serveInputs(const serve::QueryParams &params)
{
    return serve::resolveRequest(kServeDsl, params,
                                 AcceleratorConfig::paperStudy());
}

TEST(MapperServe, TuneHandlerUsesWorkerBudgetDeterministically)
{
    // Regression for the server-side tuner ignoring the worker pool:
    // tuneJson now takes the worker budget, and its response must be
    // byte-identical whatever budget it gets (trimmed space to keep
    // the handler fast).
    const serve::QueryParams params{
        {"layer", "conv"},       {"objective", "edp"},
        {"clusters", "1,4"},     {"tiles", "1,8"},
        {"act_tiles", "1,2"},
    };
    const serve::RequestInputs inputs = serveInputs(params);
    const auto pipeline = std::make_shared<AnalysisPipeline>();
    const EnergyModel energy;
    const std::string serial =
        serve::tuneJson(inputs, params, pipeline, energy, 1);
    const std::string threaded =
        serve::tuneJson(inputs, params, pipeline, energy, 4);
    EXPECT_EQ(serial, threaded);
    EXPECT_NE(serial.find("\"mode\":\"layer\""), std::string::npos);
    EXPECT_NE(serial.find("\"search\""), std::string::npos);
}

TEST(MapperServe, TuneHandlerHonorsRequestKnobs)
{
    serve::QueryParams params{
        {"layer", "conv"},   {"top_k", "2"},  {"clusters", "1,4"},
        {"tiles", "1,8"},    {"act_tiles", "1"},
    };
    const serve::RequestInputs inputs = serveInputs(params);
    const auto pipeline = std::make_shared<AnalysisPipeline>();
    const EnergyModel energy;
    const std::string body =
        serve::tuneJson(inputs, params, pipeline, energy, 2);
    // top_k=2 keeps exactly two ranked entries.
    std::size_t entries = 0;
    for (std::size_t pos = body.find("\"dataflow\"");
         pos != std::string::npos;
         pos = body.find("\"dataflow\"", pos + 1))
        ++entries;
    EXPECT_EQ(entries, 2u);
    EXPECT_THROW(serve::tuneJson(inputs,
                                 serve::QueryParams{
                                     {"layer", "conv"},
                                     {"top_k", "0"},
                                 },
                                 pipeline, energy, 1),
                 Error);
}

TEST(MapperServe, TuneHandlerNetworkMode)
{
    const serve::QueryParams params{
        {"mode", "network"}, {"objective", "runtime"},
        {"clusters", "1,4"}, {"tiles", "1,8"},
        {"act_tiles", "1"},
    };
    const serve::RequestInputs inputs = serveInputs(params);
    const auto pipeline = std::make_shared<AnalysisPipeline>();
    const EnergyModel energy;
    const std::string body =
        serve::tuneJson(inputs, params, pipeline, energy, 2);
    EXPECT_NE(body.find("\"mode\":\"network\""), std::string::npos);
    EXPECT_NE(body.find("\"unique_shapes\":2"), std::string::npos);
    EXPECT_NE(body.find("\"best_single\""), std::string::npos);
    EXPECT_NE(body.find("\"winner\""), std::string::npos);
    // Byte-identical across worker budgets.
    EXPECT_EQ(body,
              serve::tuneJson(inputs, params, pipeline, energy, 4));
}

} // namespace
} // namespace maestro
