/**
 * @file
 * Unit tests for the integer-math helpers.
 */

#include <gtest/gtest.h>

#include "src/common/math_util.hh"

namespace maestro
{
namespace
{

TEST(CeilDiv, ExactAndInexact)
{
    EXPECT_EQ(ceilDiv(0, 4), 0);
    EXPECT_EQ(ceilDiv(8, 4), 2);
    EXPECT_EQ(ceilDiv(9, 4), 3);
    EXPECT_EQ(ceilDiv(1, 1), 1);
}

TEST(NumMapPositions, ChunkCoversExtent)
{
    EXPECT_EQ(numMapPositions(4, 8, 1), 1);
    EXPECT_EQ(numMapPositions(4, 4, 4), 1);
}

TEST(NumMapPositions, SlidingWindow)
{
    // Extent 12, size 6, offset 1: positions 0..6 -> 7.
    EXPECT_EQ(numMapPositions(12, 6, 1), 7);
    // Tiled: extent 12, size 3, offset 3 -> 4 positions.
    EXPECT_EQ(numMapPositions(12, 3, 3), 4);
    // Partial tail: extent 13, size 3, offset 3 -> 5 positions.
    EXPECT_EQ(numMapPositions(13, 3, 3), 5);
}

TEST(EdgeChunkSize, FullAndPartialTail)
{
    EXPECT_EQ(edgeChunkSize(12, 3, 3), 3);
    EXPECT_EQ(edgeChunkSize(13, 3, 3), 1);
    EXPECT_EQ(edgeChunkSize(12, 6, 1), 6);
}

TEST(ConvOutputs, StandardCases)
{
    EXPECT_EQ(convOutputs(8, 3, 1), 6);
    EXPECT_EQ(convOutputs(3, 3, 1), 1);
    EXPECT_EQ(convOutputs(2, 3, 1), 0);
    EXPECT_EQ(convOutputs(227, 11, 4), 55);
}

} // namespace
} // namespace maestro
