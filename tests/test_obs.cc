/**
 * @file
 * Tests for the observability layer: the power-of-two latency
 * histogram (bucketing, snapshot merge), the metrics registry and its
 * Prometheus rendering, the span tracer (ring-buffer wrap, trace-JSON
 * shape, generation restart), and the mode-word contract that
 * disabled sites record nothing. Suite names carry the "Obs" prefix
 * so the CI TSan job's regex picks them up.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "src/common/histogram.hh"
#include "src/common/thread_pool.hh"
#include "src/common/version.hh"
#include "src/obs/event_log.hh"
#include "src/obs/metrics.hh"
#include "src/obs/obs.hh"
#include "src/obs/shared_metrics.hh"

namespace maestro
{
namespace
{

/** Restores a clean instrumentation state around each test. */
class ObsTestBase : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::Tracer::instance().stop();
        obs::disableMode(obs::kTiming | obs::kSpans);
    }

    void
    TearDown() override
    {
        obs::Tracer::instance().stop();
        obs::disableMode(obs::kTiming | obs::kSpans);
    }
};

// ---------------------------------------------------------------- //
//                        LatencyHistogram                          //
// ---------------------------------------------------------------- //

TEST(ObsHistogram, BucketPlacementFollowsPowersOfTwo)
{
    LatencyHistogram h;
    h.record(0); // sub-µs lands in bucket 0
    h.record(1);
    h.record(2); // [2, 4) -> bucket 1
    h.record(3);
    h.record(4); // [4, 8) -> bucket 2
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.totalMicros(), 10u);
    EXPECT_EQ(h.maxMicros(), 4u);
}

TEST(ObsHistogram, HugeSamplesLandInOverflowBucket)
{
    LatencyHistogram h;
    h.record(~std::uint64_t{0});
    EXPECT_EQ(h.bucket(LatencyHistogram::kBuckets - 1), 1u);
    EXPECT_TRUE(LatencyHistogram::isOverflowBucket(
        LatencyHistogram::kBuckets - 1));
    EXPECT_FALSE(LatencyHistogram::isOverflowBucket(0));
}

TEST(ObsHistogram, UpperBoundsDouble)
{
    EXPECT_EQ(LatencyHistogram::upperBoundMicros(0), 2u);
    EXPECT_EQ(LatencyHistogram::upperBoundMicros(1), 4u);
    EXPECT_EQ(LatencyHistogram::upperBoundMicros(10), 2048u);
}

TEST(ObsHistogram, SnapshotMergeAddsCountsAndKeepsMax)
{
    LatencyHistogram a;
    LatencyHistogram b;
    a.record(1);
    a.record(100);
    b.record(5);
    b.record(7000);

    LatencyHistogram::Snapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    EXPECT_EQ(merged.count, 4u);
    EXPECT_EQ(merged.total_us, 1u + 100u + 5u + 7000u);
    EXPECT_EQ(merged.max_us, 7000u);

    std::uint64_t bucket_sum = 0;
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i)
        bucket_sum += merged.buckets[i];
    EXPECT_EQ(bucket_sum, 4u);
}

TEST(ObsHistogram, ResetZeroesEverything)
{
    LatencyHistogram h;
    h.record(123);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.totalMicros(), 0u);
    EXPECT_EQ(h.maxMicros(), 0u);
}

// ---------------------------------------------------------------- //
//                            Registry                              //
// ---------------------------------------------------------------- //

TEST(ObsRegistry, InstrumentReferencesAreStableAndShared)
{
    obs::Registry reg;
    obs::Counter &a = reg.counter("t_total", "help");
    obs::Counter &b = reg.counter("t_total", "other help ignored");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(b.value(), 3u);

    obs::Counter &labeled =
        reg.counter("t_total", "help", {{"k", "v"}});
    EXPECT_NE(&a, &labeled);
}

TEST(ObsRegistry, RenderEmitsPrometheusFamilies)
{
    obs::Registry reg;
    reg.counter("t_requests_total", "Requests served", {{"ep", "a"}})
        .add(2);
    reg.gauge("t_depth", "Queue depth").set(7);
    reg.histogram("t_lat_us", "Latency").record(3);

    std::string out;
    reg.render(out);
    EXPECT_NE(out.find("# HELP t_requests_total Requests served"),
              std::string::npos);
    EXPECT_NE(out.find("# TYPE t_requests_total counter"),
              std::string::npos);
    EXPECT_NE(out.find("t_requests_total{ep=\"a\"} 2"),
              std::string::npos);
    EXPECT_NE(out.find("# TYPE t_depth gauge"), std::string::npos);
    EXPECT_NE(out.find("t_depth 7"), std::string::npos);
    EXPECT_NE(out.find("# TYPE t_lat_us histogram"),
              std::string::npos);
    EXPECT_NE(out.find("t_lat_us_bucket{le=\"4\"} 1"),
              std::string::npos);
    EXPECT_NE(out.find("t_lat_us_bucket{le=\"+Inf\"} 1"),
              std::string::npos);
    EXPECT_NE(out.find("t_lat_us_sum 3"), std::string::npos);
    EXPECT_NE(out.find("t_lat_us_count 1"), std::string::npos);
}

TEST(ObsRegistry, RenderIsDeterministicForEqualState)
{
    obs::Registry reg1;
    obs::Registry reg2;
    for (obs::Registry *reg : {&reg2, &reg1}) {
        reg->counter("b_total", "b").add(1);
        reg->counter("a_total", "a", {{"z", "1"}}).add(2);
        reg->counter("a_total", "a", {{"b", "0"}}).add(3);
    }
    std::string out1;
    std::string out2;
    reg1.render(out1);
    reg2.render(out2);
    EXPECT_EQ(out1, out2);
    // Families sorted by name, label sets by rendered label string.
    EXPECT_LT(out1.find("a_total{b=\"0\"}"),
              out1.find("a_total{z=\"1\"}"));
    EXPECT_LT(out1.find("a_total"), out1.find("b_total"));
}

TEST(ObsRegistry, LabelStringEscapesSpecials)
{
    EXPECT_EQ(obs::labelString({}), "");
    EXPECT_EQ(obs::labelString({{"a", "x"}, {"b", "y"}}),
              "{a=\"x\",b=\"y\"}");
    EXPECT_EQ(obs::labelString({{"k", "q\"b\\c\nd"}}),
              "{k=\"q\\\"b\\\\c\\nd\"}");
}

TEST(ObsRegistry, ResetForTestZeroesValuesButKeepsFamilies)
{
    obs::Registry reg;
    reg.counter("r_total", "r").add(9);
    reg.histogram("r_us", "r").record(5);
    reg.resetForTest();
    EXPECT_EQ(reg.counter("r_total", "r").value(), 0u);
    EXPECT_EQ(reg.histogram("r_us", "r").count(), 0u);
}

// ---------------------------------------------------------------- //
//                         Spans and modes                          //
// ---------------------------------------------------------------- //

TEST_F(ObsTestBase, DisabledSpanRecordsNothing)
{
    LatencyHistogram hist;
    const obs::Site site{"obs_test.disabled", "test", &hist};
    {
        obs::ScopedSpan span(site);
        span.arg("ignored", 1);
    }
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(obs::Tracer::instance().eventCount(), 0u);
}

TEST_F(ObsTestBase, TimingModeFeedsTheSiteHistogram)
{
    LatencyHistogram hist;
    const obs::Site site{"obs_test.timing", "test", &hist};
    obs::enableMode(obs::kTiming);
    {
        obs::ScopedSpan span(site);
    }
    EXPECT_EQ(hist.count(), 1u);
    // Timing alone must not create trace events.
    EXPECT_EQ(obs::Tracer::instance().eventCount(), 0u);
}

TEST_F(ObsTestBase, ModeIsSampledAtSpanConstruction)
{
    LatencyHistogram hist;
    const obs::Site site{"obs_test.sampled", "test", &hist};
    {
        obs::ScopedSpan span(site);
        obs::enableMode(obs::kTiming); // after construction: ignored
    }
    EXPECT_EQ(hist.count(), 0u);
}

// ---------------------------------------------------------------- //
//                             Tracer                               //
// ---------------------------------------------------------------- //

TEST_F(ObsTestBase, TracerCapturesSpansWithArgs)
{
    const obs::Site site{"obs_test.span", "test", nullptr};
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.start();
    {
        obs::ScopedSpan span(site);
        span.arg("items", 42);
        span.arg("valid", 7);
    }
    tracer.stop();
    EXPECT_EQ(tracer.eventCount(), 1u);

    const std::string json = tracer.json();
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find("\"name\":\"obs_test.span\""),
              std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"items\":42"), std::string::npos);
    EXPECT_NE(json.find("\"valid\":7"), std::string::npos);
    EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);

    // Well-formedness proxy: balanced braces and brackets.
    std::int64_t braces = 0;
    std::int64_t brackets = 0;
    for (char c : json) {
        braces += c == '{' ? 1 : c == '}' ? -1 : 0;
        brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST_F(ObsTestBase, RingWrapKeepsNewestAndCountsDropped)
{
    const obs::Site site{"obs_test.wrap", "test", nullptr};
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.start(/*ring_capacity=*/4);
    for (int i = 0; i < 10; ++i)
        obs::ScopedSpan span(site);
    tracer.stop();
    EXPECT_EQ(tracer.eventCount(), 4u);
    EXPECT_EQ(tracer.droppedCount(), 6u);
    EXPECT_NE(tracer.json().find("\"dropped_events\":6"),
              std::string::npos);
}

TEST_F(ObsTestBase, StartDiscardsThePreviousGeneration)
{
    const obs::Site site{"obs_test.gen", "test", nullptr};
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.start();
    {
        obs::ScopedSpan span(site);
    }
    EXPECT_EQ(tracer.eventCount(), 1u);
    tracer.start();
    EXPECT_EQ(tracer.eventCount(), 0u);
    EXPECT_EQ(tracer.droppedCount(), 0u);
    tracer.stop();
}

TEST_F(ObsTestBase, StopFreezesCaptureButKeepsEventsExportable)
{
    const obs::Site site{"obs_test.frozen", "test", nullptr};
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.start();
    {
        obs::ScopedSpan span(site);
    }
    tracer.stop();
    {
        obs::ScopedSpan span(site); // after stop: not captured
    }
    EXPECT_EQ(tracer.eventCount(), 1u);
    EXPECT_NE(tracer.json().find("obs_test.frozen"),
              std::string::npos);
}

TEST_F(ObsTestBase, ObsConcurrentSpansAndCountersAreRaceFree)
{
    static LatencyHistogram hist;
    static const obs::Site site{"obs_test.mt", "test", &hist};
    obs::Registry reg;
    obs::Counter &counter = reg.counter("mt_total", "mt");
    obs::Tracer &tracer = obs::Tracer::instance();

    hist.reset();
    tracer.start(/*ring_capacity=*/256);
    constexpr std::size_t kIterations = 400;
    ThreadPool::run(4, kIterations, [&](std::size_t i) {
        obs::ScopedSpan span(site);
        span.arg("i", i);
        counter.add(1);
    });
    tracer.stop();

    EXPECT_EQ(counter.value(), kIterations);
    EXPECT_EQ(hist.count(), kIterations);
    // The pool itself also records spans (pool.task,
    // pool.parallel_for) while tracing, so captured + dropped is at
    // least the explicit span count.
    EXPECT_GE(static_cast<std::uint64_t>(tracer.eventCount()) +
                  tracer.droppedCount(),
              kIterations);
    // Export renders cleanly after concurrent capture.
    const std::string json = tracer.json();
    EXPECT_NE(json.find("obs_test.mt"), std::string::npos);
}

TEST(ObsVersion, VersionStringLooksSemantic)
{
    const std::string v = kVersion;
    EXPECT_FALSE(v.empty());
    EXPECT_NE(v.find('.'), std::string::npos);
}

// ---------------------------------------------------------------- //
//                      SharedMetrics segment                       //
// ---------------------------------------------------------------- //

TEST(ObsSharedMetrics, RegistrationIsIdempotentAcrossKinds)
{
    const auto m = obs::SharedMetrics::create(2);
    const std::size_t c1 = m->counter("requests_total");
    const std::size_t c2 = m->counter("requests_total");
    EXPECT_EQ(c1, c2);
    EXPECT_NE(c1, obs::SharedMetrics::kNoSlot);

    // Kind tables are independent: the same name may exist as a
    // counter AND a gauge without colliding.
    const std::size_t g = m->gauge("requests_total");
    EXPECT_NE(g, obs::SharedMetrics::kNoSlot);
    EXPECT_EQ(m->counterCount(), 1u);
    EXPECT_EQ(m->gaugeCount(), 1u);

    EXPECT_EQ(m->findCounter("requests_total"), c1);
    EXPECT_EQ(m->findCounter("never_registered"),
              obs::SharedMetrics::kNoSlot);
}

TEST(ObsSharedMetrics, LaneSumsAreFleetTotals)
{
    const auto m = obs::SharedMetrics::create(3);
    ASSERT_EQ(m->lanes(), 3u);
    const std::size_t c = m->counter("c");
    m->addCounter(c, 0, 5);
    m->addCounter(c, 1, 7);
    m->addCounter(c, 2, 11);
    EXPECT_EQ(m->counterLane(c, 1), 7u);
    EXPECT_EQ(m->counterTotal(c), 23u);

    const std::size_t g = m->gauge("g");
    m->addGauge(g, 0, 4);
    m->addGauge(g, 1, -1);
    m->setGauge(g, 2, 10);
    EXPECT_EQ(m->gaugeLane(g, 1), -1);
    EXPECT_EQ(m->gaugeTotal(g), 13);
}

TEST(ObsSharedMetrics, HistogramLaneMergeIsExact)
{
    // The same samples, once through the local LatencyHistogram and
    // once split across two segment lanes, must merge to the exact
    // same snapshot — counters, per-bucket counts, total, and max.
    const std::uint64_t samples[] = {0,  1,   3,     7,      8,
                                     63, 900, 12345, 7777777};
    LatencyHistogram local;
    const auto m = obs::SharedMetrics::create(2);
    const std::size_t h = m->histogram("latency_us");
    std::size_t i = 0;
    for (const std::uint64_t s : samples) {
        local.record(s);
        m->recordHistogram(h, i++ % 2, s);
    }
    const LatencyHistogram::Snapshot want = local.snapshot();
    const LatencyHistogram::Snapshot got = m->histogramTotal(h);
    EXPECT_EQ(got.count, want.count);
    EXPECT_EQ(got.total_us, want.total_us);
    EXPECT_EQ(got.max_us, want.max_us);
    for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b)
        EXPECT_EQ(got.buckets[b], want.buckets[b]) << "bucket " << b;

    // Per-lane reads see only their lane's share.
    const auto lane0 = m->histogramLane(h, 0);
    const auto lane1 = m->histogramLane(h, 1);
    EXPECT_EQ(lane0.count + lane1.count, want.count);
}

TEST(ObsSharedMetrics, FullTablesAndLongNamesReturnNoSlot)
{
    const auto m = obs::SharedMetrics::create(1);
    for (std::size_t i = 0; i < obs::SharedMetrics::kMaxGauges;
         ++i) {
        std::string name = "g";
        name += std::to_string(i);
        ASSERT_NE(m->gauge(name), obs::SharedMetrics::kNoSlot);
    }
    EXPECT_EQ(m->gauge("one_too_many"),
              obs::SharedMetrics::kNoSlot);

    const std::string long_name(obs::SharedMetrics::kMaxNameBytes,
                                'x');
    EXPECT_EQ(m->counter(long_name), obs::SharedMetrics::kNoSlot);
    // One byte under the cap (NUL included) still fits.
    const std::string fits(obs::SharedMetrics::kMaxNameBytes - 1,
                           'y');
    EXPECT_NE(m->counter(fits), obs::SharedMetrics::kNoSlot);
}

TEST(ObsSharedMetrics, LaneCountClampsToBounds)
{
    EXPECT_EQ(obs::SharedMetrics::create(0)->lanes(), 1u);
    EXPECT_EQ(obs::SharedMetrics::create(100000)->lanes(),
              obs::SharedMetrics::kMaxLanes);
}

TEST(ObsSharedMetrics, CountersWithPrefixCountsLiveSeries)
{
    const auto m = obs::SharedMetrics::create(1);
    m->counter("client_requests_total{client=\"a\"}");
    m->counter("client_requests_total{client=\"b\"}");
    m->counter("client_inflight{client=\"a\"}");
    EXPECT_EQ(m->countersWithPrefix("client_requests_total{"), 2u);
    EXPECT_EQ(m->countersWithPrefix("client_"), 3u);
    EXPECT_EQ(m->countersWithPrefix("nope"), 0u);
}

TEST(ObsSharedMetrics, ConcurrentRegistrationAgreesOnSlots)
{
    // Many threads register the same name set concurrently (the
    // post-fork per-client path): every thread must resolve each
    // name to the same slot and the table must hold exactly one slot
    // per distinct name.
    const auto m = obs::SharedMetrics::create(4);
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kNames = 32;
    std::vector<std::vector<std::size_t>> slots(
        kThreads, std::vector<std::size_t>(kNames));
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::size_t n = 0; n < kNames; ++n) {
                const std::size_t slot =
                    m->counter("name_" + std::to_string(n));
                slots[t][n] = slot;
                m->addCounter(slot, t % 4);
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(m->counterCount(), kNames);
    for (std::size_t n = 0; n < kNames; ++n) {
        for (std::size_t t = 1; t < kThreads; ++t)
            EXPECT_EQ(slots[t][n], slots[0][n]);
        EXPECT_EQ(m->counterTotal(slots[0][n]), kThreads);
    }
}

// ---------------------------------------------------------------- //
//                       EventLog (JSONL)                           //
// ---------------------------------------------------------------- //

namespace
{

/** A throwaway log path, removed (with its .1 rotation) on exit. */
class TempLogPath
{
  public:
    explicit TempLogPath(const char *tag)
        : path_(std::string(::testing::TempDir()) +
                "maestro_event_log_" + tag + "_" +
                std::to_string(::getpid()) + ".jsonl")
    {
        std::remove(path_.c_str());
        std::remove((path_ + ".1").c_str());
    }
    ~TempLogPath()
    {
        std::remove(path_.c_str());
        std::remove((path_ + ".1").c_str());
    }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

} // namespace

TEST(ObsEventLog, LinesAreOneWholeJsonObjectEach)
{
    TempLogPath path("schema");
    obs::EventLogOptions opt;
    opt.path = path.str();
    opt.worker = 3;
    obs::EventLog log(opt);

    obs::RequestEvent req;
    req.method = "POST";
    req.endpoint = "analyze";
    req.status = 200;
    req.latency_us = 1234;
    req.client = "alice";
    req.trace = "maestro-1";
    req.cache = "miss";
    log.logRequest(req);

    obs::JobEvent job;
    job.event = "completed";
    job.id = "job-1";
    job.client = "alice";
    job.endpoint = "dse";
    job.trace = "maestro-1";
    job.status = 200;
    job.has_run = true;
    job.run_us = 99;
    log.logJob(job);

    log.logWorker("started", 42);

    const auto lines = readLines(path.str());
    ASSERT_EQ(lines.size(), 3u);
    for (const std::string &line : lines) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"ts_us\":"), std::string::npos);
        EXPECT_NE(line.find("\"worker\":"), std::string::npos);
    }
    EXPECT_NE(lines[0].find("\"type\":\"request\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"endpoint\":\"analyze\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"latency_us\":1234"),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"cache\":\"miss\""),
              std::string::npos);
    EXPECT_NE(lines[1].find("\"type\":\"job\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"run_us\":99"), std::string::npos);
    EXPECT_NE(lines[2].find("\"type\":\"worker\""),
              std::string::npos);

    const obs::EventLogStats stats = log.stats();
    EXPECT_EQ(stats.lines, 3u);
    EXPECT_EQ(stats.rotations, 0u);
    std::ifstream in(path.str(), std::ios::ate | std::ios::binary);
    EXPECT_EQ(static_cast<std::uint64_t>(in.tellg()), stats.bytes);
}

TEST(ObsEventLog, RingTailsNewestEntriesOldestFirst)
{
    obs::EventLogOptions opt; // no path: ring only
    opt.ring = 4;
    obs::EventLog log(opt);
    for (int i = 0; i < 6; ++i)
        log.logWorker("tick", i);

    const std::string tail = log.tailJson(10);
    EXPECT_NE(tail.find("\"count\":4"), std::string::npos);
    // 0 and 1 were overwritten; 2..5 remain, oldest first.
    EXPECT_EQ(tail.find("\"pid\":0"), std::string::npos);
    EXPECT_EQ(tail.find("\"pid\":1}"), std::string::npos);
    const std::size_t p2 = tail.find("\"pid\":2");
    const std::size_t p5 = tail.find("\"pid\":5");
    EXPECT_NE(p2, std::string::npos);
    EXPECT_NE(p5, std::string::npos);
    EXPECT_LT(p2, p5);
    EXPECT_EQ(log.stats().dropped, 2u);

    const std::string two = log.tailJson(2);
    EXPECT_NE(two.find("\"count\":2"), std::string::npos);
    EXPECT_EQ(two.find("\"pid\":3"), std::string::npos);
}

TEST(ObsEventLog, RotationKeepsWholeLinesOnBothSides)
{
    TempLogPath path("rotate");
    obs::EventLogOptions opt;
    opt.path = path.str();
    opt.max_bytes = 512; // force several rotations
    obs::EventLog log(opt);
    for (int i = 0; i < 40; ++i)
        log.logWorker("spin", 1000 + i);

    const obs::EventLogStats stats = log.stats();
    EXPECT_GE(stats.rotations, 1u);
    EXPECT_EQ(stats.lines, 40u);

    std::size_t total = 0;
    for (const std::string &file :
         {path.str(), path.str() + ".1"}) {
        for (const std::string &line : readLines(file)) {
            ASSERT_FALSE(line.empty()) << file;
            EXPECT_EQ(line.front(), '{') << file;
            EXPECT_EQ(line.back(), '}') << file;
            ++total;
        }
    }
    // Rotation renames path -> path.1, so at most one prior
    // generation survives; everything still on disk is whole lines.
    EXPECT_GT(total, 0u);
    EXPECT_LE(total, 40u);
}

TEST(ObsEventLog, EmptyPathKeepsRingOnly)
{
    obs::EventLogOptions opt;
    obs::EventLog log(opt);
    log.logWorker("started", 7);
    EXPECT_EQ(log.stats().lines, 1u);
    EXPECT_EQ(log.stats().bytes, 0u);
    EXPECT_NE(log.tailJson(1).find("\"pid\":7"), std::string::npos);
}

} // namespace
} // namespace maestro
