/**
 * @file
 * Tests for the observability layer: the power-of-two latency
 * histogram (bucketing, snapshot merge), the metrics registry and its
 * Prometheus rendering, the span tracer (ring-buffer wrap, trace-JSON
 * shape, generation restart), and the mode-word contract that
 * disabled sites record nothing. Suite names carry the "Obs" prefix
 * so the CI TSan job's regex picks them up.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/common/histogram.hh"
#include "src/common/thread_pool.hh"
#include "src/common/version.hh"
#include "src/obs/metrics.hh"
#include "src/obs/obs.hh"

namespace maestro
{
namespace
{

/** Restores a clean instrumentation state around each test. */
class ObsTestBase : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::Tracer::instance().stop();
        obs::disableMode(obs::kTiming | obs::kSpans);
    }

    void
    TearDown() override
    {
        obs::Tracer::instance().stop();
        obs::disableMode(obs::kTiming | obs::kSpans);
    }
};

// ---------------------------------------------------------------- //
//                        LatencyHistogram                          //
// ---------------------------------------------------------------- //

TEST(ObsHistogram, BucketPlacementFollowsPowersOfTwo)
{
    LatencyHistogram h;
    h.record(0); // sub-µs lands in bucket 0
    h.record(1);
    h.record(2); // [2, 4) -> bucket 1
    h.record(3);
    h.record(4); // [4, 8) -> bucket 2
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.totalMicros(), 10u);
    EXPECT_EQ(h.maxMicros(), 4u);
}

TEST(ObsHistogram, HugeSamplesLandInOverflowBucket)
{
    LatencyHistogram h;
    h.record(~std::uint64_t{0});
    EXPECT_EQ(h.bucket(LatencyHistogram::kBuckets - 1), 1u);
    EXPECT_TRUE(LatencyHistogram::isOverflowBucket(
        LatencyHistogram::kBuckets - 1));
    EXPECT_FALSE(LatencyHistogram::isOverflowBucket(0));
}

TEST(ObsHistogram, UpperBoundsDouble)
{
    EXPECT_EQ(LatencyHistogram::upperBoundMicros(0), 2u);
    EXPECT_EQ(LatencyHistogram::upperBoundMicros(1), 4u);
    EXPECT_EQ(LatencyHistogram::upperBoundMicros(10), 2048u);
}

TEST(ObsHistogram, SnapshotMergeAddsCountsAndKeepsMax)
{
    LatencyHistogram a;
    LatencyHistogram b;
    a.record(1);
    a.record(100);
    b.record(5);
    b.record(7000);

    LatencyHistogram::Snapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    EXPECT_EQ(merged.count, 4u);
    EXPECT_EQ(merged.total_us, 1u + 100u + 5u + 7000u);
    EXPECT_EQ(merged.max_us, 7000u);

    std::uint64_t bucket_sum = 0;
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i)
        bucket_sum += merged.buckets[i];
    EXPECT_EQ(bucket_sum, 4u);
}

TEST(ObsHistogram, ResetZeroesEverything)
{
    LatencyHistogram h;
    h.record(123);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.totalMicros(), 0u);
    EXPECT_EQ(h.maxMicros(), 0u);
}

// ---------------------------------------------------------------- //
//                            Registry                              //
// ---------------------------------------------------------------- //

TEST(ObsRegistry, InstrumentReferencesAreStableAndShared)
{
    obs::Registry reg;
    obs::Counter &a = reg.counter("t_total", "help");
    obs::Counter &b = reg.counter("t_total", "other help ignored");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(b.value(), 3u);

    obs::Counter &labeled =
        reg.counter("t_total", "help", {{"k", "v"}});
    EXPECT_NE(&a, &labeled);
}

TEST(ObsRegistry, RenderEmitsPrometheusFamilies)
{
    obs::Registry reg;
    reg.counter("t_requests_total", "Requests served", {{"ep", "a"}})
        .add(2);
    reg.gauge("t_depth", "Queue depth").set(7);
    reg.histogram("t_lat_us", "Latency").record(3);

    std::string out;
    reg.render(out);
    EXPECT_NE(out.find("# HELP t_requests_total Requests served"),
              std::string::npos);
    EXPECT_NE(out.find("# TYPE t_requests_total counter"),
              std::string::npos);
    EXPECT_NE(out.find("t_requests_total{ep=\"a\"} 2"),
              std::string::npos);
    EXPECT_NE(out.find("# TYPE t_depth gauge"), std::string::npos);
    EXPECT_NE(out.find("t_depth 7"), std::string::npos);
    EXPECT_NE(out.find("# TYPE t_lat_us histogram"),
              std::string::npos);
    EXPECT_NE(out.find("t_lat_us_bucket{le=\"4\"} 1"),
              std::string::npos);
    EXPECT_NE(out.find("t_lat_us_bucket{le=\"+Inf\"} 1"),
              std::string::npos);
    EXPECT_NE(out.find("t_lat_us_sum 3"), std::string::npos);
    EXPECT_NE(out.find("t_lat_us_count 1"), std::string::npos);
}

TEST(ObsRegistry, RenderIsDeterministicForEqualState)
{
    obs::Registry reg1;
    obs::Registry reg2;
    for (obs::Registry *reg : {&reg2, &reg1}) {
        reg->counter("b_total", "b").add(1);
        reg->counter("a_total", "a", {{"z", "1"}}).add(2);
        reg->counter("a_total", "a", {{"b", "0"}}).add(3);
    }
    std::string out1;
    std::string out2;
    reg1.render(out1);
    reg2.render(out2);
    EXPECT_EQ(out1, out2);
    // Families sorted by name, label sets by rendered label string.
    EXPECT_LT(out1.find("a_total{b=\"0\"}"),
              out1.find("a_total{z=\"1\"}"));
    EXPECT_LT(out1.find("a_total"), out1.find("b_total"));
}

TEST(ObsRegistry, LabelStringEscapesSpecials)
{
    EXPECT_EQ(obs::labelString({}), "");
    EXPECT_EQ(obs::labelString({{"a", "x"}, {"b", "y"}}),
              "{a=\"x\",b=\"y\"}");
    EXPECT_EQ(obs::labelString({{"k", "q\"b\\c\nd"}}),
              "{k=\"q\\\"b\\\\c\\nd\"}");
}

TEST(ObsRegistry, ResetForTestZeroesValuesButKeepsFamilies)
{
    obs::Registry reg;
    reg.counter("r_total", "r").add(9);
    reg.histogram("r_us", "r").record(5);
    reg.resetForTest();
    EXPECT_EQ(reg.counter("r_total", "r").value(), 0u);
    EXPECT_EQ(reg.histogram("r_us", "r").count(), 0u);
}

// ---------------------------------------------------------------- //
//                         Spans and modes                          //
// ---------------------------------------------------------------- //

TEST_F(ObsTestBase, DisabledSpanRecordsNothing)
{
    LatencyHistogram hist;
    const obs::Site site{"obs_test.disabled", "test", &hist};
    {
        obs::ScopedSpan span(site);
        span.arg("ignored", 1);
    }
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(obs::Tracer::instance().eventCount(), 0u);
}

TEST_F(ObsTestBase, TimingModeFeedsTheSiteHistogram)
{
    LatencyHistogram hist;
    const obs::Site site{"obs_test.timing", "test", &hist};
    obs::enableMode(obs::kTiming);
    {
        obs::ScopedSpan span(site);
    }
    EXPECT_EQ(hist.count(), 1u);
    // Timing alone must not create trace events.
    EXPECT_EQ(obs::Tracer::instance().eventCount(), 0u);
}

TEST_F(ObsTestBase, ModeIsSampledAtSpanConstruction)
{
    LatencyHistogram hist;
    const obs::Site site{"obs_test.sampled", "test", &hist};
    {
        obs::ScopedSpan span(site);
        obs::enableMode(obs::kTiming); // after construction: ignored
    }
    EXPECT_EQ(hist.count(), 0u);
}

// ---------------------------------------------------------------- //
//                             Tracer                               //
// ---------------------------------------------------------------- //

TEST_F(ObsTestBase, TracerCapturesSpansWithArgs)
{
    const obs::Site site{"obs_test.span", "test", nullptr};
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.start();
    {
        obs::ScopedSpan span(site);
        span.arg("items", 42);
        span.arg("valid", 7);
    }
    tracer.stop();
    EXPECT_EQ(tracer.eventCount(), 1u);

    const std::string json = tracer.json();
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find("\"name\":\"obs_test.span\""),
              std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"items\":42"), std::string::npos);
    EXPECT_NE(json.find("\"valid\":7"), std::string::npos);
    EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);

    // Well-formedness proxy: balanced braces and brackets.
    std::int64_t braces = 0;
    std::int64_t brackets = 0;
    for (char c : json) {
        braces += c == '{' ? 1 : c == '}' ? -1 : 0;
        brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST_F(ObsTestBase, RingWrapKeepsNewestAndCountsDropped)
{
    const obs::Site site{"obs_test.wrap", "test", nullptr};
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.start(/*ring_capacity=*/4);
    for (int i = 0; i < 10; ++i)
        obs::ScopedSpan span(site);
    tracer.stop();
    EXPECT_EQ(tracer.eventCount(), 4u);
    EXPECT_EQ(tracer.droppedCount(), 6u);
    EXPECT_NE(tracer.json().find("\"dropped_events\":6"),
              std::string::npos);
}

TEST_F(ObsTestBase, StartDiscardsThePreviousGeneration)
{
    const obs::Site site{"obs_test.gen", "test", nullptr};
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.start();
    {
        obs::ScopedSpan span(site);
    }
    EXPECT_EQ(tracer.eventCount(), 1u);
    tracer.start();
    EXPECT_EQ(tracer.eventCount(), 0u);
    EXPECT_EQ(tracer.droppedCount(), 0u);
    tracer.stop();
}

TEST_F(ObsTestBase, StopFreezesCaptureButKeepsEventsExportable)
{
    const obs::Site site{"obs_test.frozen", "test", nullptr};
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.start();
    {
        obs::ScopedSpan span(site);
    }
    tracer.stop();
    {
        obs::ScopedSpan span(site); // after stop: not captured
    }
    EXPECT_EQ(tracer.eventCount(), 1u);
    EXPECT_NE(tracer.json().find("obs_test.frozen"),
              std::string::npos);
}

TEST_F(ObsTestBase, ObsConcurrentSpansAndCountersAreRaceFree)
{
    static LatencyHistogram hist;
    static const obs::Site site{"obs_test.mt", "test", &hist};
    obs::Registry reg;
    obs::Counter &counter = reg.counter("mt_total", "mt");
    obs::Tracer &tracer = obs::Tracer::instance();

    hist.reset();
    tracer.start(/*ring_capacity=*/256);
    constexpr std::size_t kIterations = 400;
    ThreadPool::run(4, kIterations, [&](std::size_t i) {
        obs::ScopedSpan span(site);
        span.arg("i", i);
        counter.add(1);
    });
    tracer.stop();

    EXPECT_EQ(counter.value(), kIterations);
    EXPECT_EQ(hist.count(), kIterations);
    // The pool itself also records spans (pool.task,
    // pool.parallel_for) while tracing, so captured + dropped is at
    // least the explicit span count.
    EXPECT_GE(static_cast<std::uint64_t>(tracer.eventCount()) +
                  tracer.droppedCount(),
              kIterations);
    // Export renders cleanly after concurrent capture.
    const std::string json = tracer.json();
    EXPECT_NE(json.find("obs_test.mt"), std::string::npos);
}

TEST(ObsVersion, VersionStringLooksSemantic)
{
    const std::string v = kVersion;
    EXPECT_FALSE(v.empty());
    EXPECT_NE(v.find('.'), std::string::npos);
}

} // namespace
} // namespace maestro
