/**
 * @file
 * Robustness tests for the DSL frontend treated as an untrusted-input
 * boundary (the analysis server feeds request bodies straight into
 * frontend::parseString). Hostile input — truncations, absurd numeric
 * literals, pathological repetition, random token soup — must always
 * surface as a clean maestro::Error, never a crash, hang, or signed
 * overflow.
 */

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "src/common/error.hh"
#include "src/frontend/parser.hh"
#include "src/frontend/serializer.hh"
#include "src/model/zoo.hh"

namespace maestro
{
namespace frontend
{
namespace
{

/** parseString must either succeed or throw maestro::Error. */
void
expectCleanOutcome(const std::string &source)
{
    try {
        (void)parseString(source);
    } catch (const Error &) {
        // A clean, typed rejection is the expected failure mode.
    }
    // Any other exception type (or a crash) fails the test.
}

const char kValidSource[] =
    "Network tiny {\n"
    "  Layer conv1 {\n"
    "    Type: CONV;\n"
    "    Stride: 1;\n"
    "    Dimensions { K: 4; C: 3; R: 3; S: 3; Y: 8; X: 8; }\n"
    "  }\n"
    "}\n"
    "Dataflow kcp {\n"
    "  TemporalMap(1, 1) K;\n"
    "  SpatialMap(1, 1) C;\n"
    "  TemporalMap(Sz(R), Sz(R)) R;\n"
    "  TemporalMap(Sz(S), Sz(S)) S;\n"
    "}\n"
    "Accelerator {\n"
    "  NumPEs: 64;\n"
    "  L1: 512;\n"
    "  L2: 65536;\n"
    "}\n";

TEST(ParserRobustness, EveryTruncationIsCleanlyRejected)
{
    const std::string full(kValidSource);
    // Every proper prefix must parse cleanly or throw Error — a
    // truncated upload must never read past the token stream.
    for (std::size_t len = 0; len < full.size(); ++len)
        expectCleanOutcome(full.substr(0, len));
    EXPECT_NO_THROW((void)parseString(full));
}

TEST(ParserRobustness, UnterminatedConstructs)
{
    expectCleanOutcome("Network n { Layer l { Type: CONV;");
    expectCleanOutcome("Dataflow d { TemporalMap(1, 1) K");
    expectCleanOutcome("/* comment that never ends");
    expectCleanOutcome("Network n { Layer l { Dimensions { K: 1;");
    EXPECT_THROW((void)parseString("/* open"), Error);
}

TEST(ParserRobustness, AbsurdNumericLiterals)
{
    // Literal larger than int64: checked accumulation -> Error.
    EXPECT_THROW(
        (void)parseString("Network n { Layer l { Stride: "
                          "99999999999999999999999999; } }"),
        Error);
    // Sum of in-range terms overflowing int64 -> Error, not UB.
    EXPECT_THROW((void)parseString(
                     "Dataflow d { Cluster(9223372036854775807 + "
                     "9223372036854775807); }"),
                 Error);
    EXPECT_THROW((void)parseString(
                     "Dataflow d { TemporalMap(9223372036854775807 "
                     "+ 1, 1) K; }"),
                 Error);
    // Max literal alone still lexes.
    expectCleanOutcome(
        "Dataflow d { Cluster(9223372036854775807); }");
}

TEST(ParserRobustness, DeeplyRepeatedClusterDirectives)
{
    // 50k nested Cluster levels: the parser must stay iterative and
    // reject (or accept) without exhausting the stack.
    std::string source = "Dataflow deep {\n";
    for (int i = 0; i < 50000; ++i)
        source += "Cluster(2);\n";
    source += "TemporalMap(1, 1) K;\n}\n";
    expectCleanOutcome(source);
}

TEST(ParserRobustness, GarbageBytes)
{
    expectCleanOutcome("\x01\x02\x03\xff\xfe");
    expectCleanOutcome("Network \x7f {}");
    expectCleanOutcome(std::string(100000, '{'));
    expectCleanOutcome(std::string(100000, '9'));
    expectCleanOutcome("Network n { Layer l { Type: CONV; } } trailing"
                       " ) ; } garbage");
}

TEST(ParserRobustness, SeededTokenSoupFuzz)
{
    // Deterministic fuzz: random concatenations of real DSL tokens.
    // Only Error may escape parseString.
    static const char *const kTokens[] = {
        "Network",  "Dataflow", "Accelerator", "Layer",
        "Type:",    "CONV;",    "Dimensions",  "K:",
        "Sz(",      "R",        ")",           "(",
        "{",        "}",        ";",           ",",
        "+",        "-",        "SpatialMap",  "TemporalMap",
        "Cluster",  "17",       "0",           "9223372036854775807",
        "NumPEs:",  "name_x",   "//cmt\n",     "/*c*/",
    };
    std::mt19937 rng(20190212); // fixed seed: reproducible corpus
    std::uniform_int_distribution<std::size_t> pick(
        0, sizeof(kTokens) / sizeof(kTokens[0]) - 1);
    std::uniform_int_distribution<int> len(1, 60);
    for (int iter = 0; iter < 500; ++iter) {
        std::string source;
        const int n = len(rng);
        for (int i = 0; i < n; ++i) {
            source += kTokens[pick(rng)];
            source += ' ';
        }
        expectCleanOutcome(source);
    }
}

TEST(ParserRobustness, SerializedZooModelsRoundTripThroughParser)
{
    // The serializer's output is exactly what the server's heavier
    // test payloads are built from; it must stay parseable.
    for (const char *name : {"resnet50", "mobilenetv2", "vgg16"}) {
        const Network net = zoo::byName(name);
        const ParsedFile parsed = parseString(serialize(net));
        ASSERT_EQ(parsed.networks.size(), 1u) << name;
        EXPECT_EQ(parsed.networks[0].layers().size(),
                  net.layers().size())
            << name;
    }
}

} // namespace
} // namespace frontend
} // namespace maestro
