/**
 * @file
 * Unit tests for the performance analysis engine: runtime bounds,
 * bandwidth sensitivity, hardware-support effects, and bottleneck
 * classification.
 */

#include <gtest/gtest.h>

#include "src/core/analyzer.hh"
#include "src/dataflows/catalog.hh"
#include "src/model/zoo.hh"

namespace maestro
{
namespace
{

Layer
conv(Count k, Count c, Count hw, Count rs, Count stride = 1,
     Count pad = 0)
{
    DimMap<Count> d;
    d[Dim::N] = 1;
    d[Dim::K] = k;
    d[Dim::C] = c;
    d[Dim::Y] = hw;
    d[Dim::X] = hw;
    d[Dim::R] = rs;
    d[Dim::S] = rs;
    Layer l("test", OpType::Conv2D, d);
    l.stride(stride).padding(pad);
    return l;
}

LayerAnalysis
analyze(const Layer &layer, const Dataflow &df,
        AcceleratorConfig cfg = AcceleratorConfig::paperStudy())
{
    return Analyzer(cfg).analyzeLayer(layer, df);
}

TEST(Performance, RuntimeAtLeastComputeOnly)
{
    const Layer layer = conv(64, 64, 56, 3, 1, 1);
    for (const Dataflow &df : dataflows::table3()) {
        const LayerAnalysis la = analyze(layer, df);
        EXPECT_GE(la.runtime,
                  la.perf.compute_only_runtime * (1.0 - 1e-9))
            << df.name();
    }
}

TEST(Performance, RuntimeAtLeastSerialOverActivePes)
{
    // MACs / active PEs is a hard lower bound on cycles.
    const Layer layer = conv(64, 64, 56, 3, 1, 1);
    for (const Dataflow &df : dataflows::table3()) {
        const LayerAnalysis la = analyze(layer, df);
        const double bound = la.total_macs / la.active_pes;
        EXPECT_GE(la.runtime, bound * 0.95) << df.name();
    }
}

TEST(Performance, MoreBandwidthNeverHurts)
{
    const Layer layer = conv(64, 64, 112, 3, 1, 1);
    for (const Dataflow &df : dataflows::table3()) {
        double prev = 0.0;
        for (double bw : {4.0, 8.0, 16.0, 32.0, 64.0, 128.0}) {
            AcceleratorConfig cfg = AcceleratorConfig::paperStudy();
            cfg.noc = NocModel(bw, 1.0);
            const LayerAnalysis la = analyze(layer, df, cfg);
            if (prev > 0.0) {
                EXPECT_LE(la.runtime, prev * (1.0 + 1e-9))
                    << df.name() << " bw " << bw;
            }
            prev = la.runtime;
        }
    }
}

TEST(Performance, VectorWidthSpeedsCompute)
{
    const Layer layer = conv(64, 64, 28, 3, 1, 1);
    AcceleratorConfig narrow = AcceleratorConfig::paperStudy();
    AcceleratorConfig wide = narrow;
    wide.vector_width = 4;
    const LayerAnalysis a =
        analyze(layer, dataflows::kcPartitioned(), narrow);
    const LayerAnalysis b =
        analyze(layer, dataflows::kcPartitioned(), wide);
    EXPECT_LT(b.perf.compute_only_runtime,
              a.perf.compute_only_runtime);
}

TEST(Performance, LosingMulticastNeverSpeedsUp)
{
    const Layer layer = conv(64, 64, 56, 3, 1, 1);
    AcceleratorConfig with = AcceleratorConfig::paperStudy();
    AcceleratorConfig without = with;
    without.spatial_multicast = false;
    for (const Dataflow &df : dataflows::table3()) {
        const LayerAnalysis a = analyze(layer, df, with);
        const LayerAnalysis b = analyze(layer, df, without);
        EXPECT_GE(b.runtime, a.runtime * (1.0 - 1e-9)) << df.name();
    }
}

TEST(Performance, BiggerL2CutsDramTraffic)
{
    // KC-P refetches the input once per K fold; an L2 that holds the
    // whole input collapses that to one DRAM fetch.
    const Layer layer = conv(512, 512, 14, 3, 1, 1);
    AcceleratorConfig small = AcceleratorConfig::paperStudy();
    small.l2_bytes = 16 * 1024;
    AcceleratorConfig big = small;
    big.l2_bytes = 1 << 20;
    const LayerAnalysis a =
        analyze(layer, dataflows::kcPartitioned(), small);
    const LayerAnalysis b =
        analyze(layer, dataflows::kcPartitioned(), big);
    EXPECT_GT(a.cost.dram_reads[TensorKind::Input],
              b.cost.dram_reads[TensorKind::Input] * 10.0);
    EXPECT_DOUBLE_EQ(
        b.cost.dram_reads[TensorKind::Input],
        static_cast<double>(layer.tensorVolume(TensorKind::Input)));
}

TEST(Performance, BottleneckClassification)
{
    const Layer layer = conv(64, 64, 56, 3, 1, 1);
    // Starved NoC: must be "noc".
    AcceleratorConfig starved = AcceleratorConfig::paperStudy();
    starved.noc = NocModel(1.0, 1.0);
    EXPECT_EQ(analyze(layer, dataflows::kcPartitioned(), starved)
                  .bottleneck,
              "noc");
    // Tiny off-chip pipe with a huge NoC: must be "offchip".
    AcceleratorConfig dram_bound = AcceleratorConfig::paperStudy();
    dram_bound.noc = NocModel(1024.0, 1.0);
    dram_bound.offchip = NocModel(0.25, 8.0);
    dram_bound.l2_bytes = 1024; // nothing resident
    EXPECT_EQ(analyze(layer, dataflows::kcPartitioned(), dram_bound)
                  .bottleneck,
              "offchip");
}

TEST(Performance, FullyConnectedRuns)
{
    // FC layers (Y=X=R=S=1) must analyze under every dataflow.
    DimMap<Count> d(1);
    d[Dim::K] = 4096;
    d[Dim::C] = 4096;
    Layer fc("fc", OpType::FullyConnected, d);
    for (const Dataflow &df : dataflows::table3()) {
        const LayerAnalysis la = analyze(fc, df);
        EXPECT_GT(la.runtime, 0.0) << df.name();
        EXPECT_DOUBLE_EQ(la.total_macs, 4096.0 * 4096.0) << df.name();
    }
}

TEST(Performance, SparsityScalesComputeAndTraffic)
{
    Layer dense = conv(64, 64, 28, 3, 1, 1);
    Layer sparse = conv(64, 64, 28, 3, 1, 1);
    sparse.weightDensity(0.5);
    const LayerAnalysis a = analyze(dense, dataflows::kcPartitioned());
    const LayerAnalysis b = analyze(sparse, dataflows::kcPartitioned());
    EXPECT_NEAR(b.total_macs, 0.5 * a.total_macs, 1.0);
    EXPECT_NEAR(b.cost.l2_reads[TensorKind::Weight],
                0.5 * a.cost.l2_reads[TensorKind::Weight],
                0.01 * a.cost.l2_reads[TensorKind::Weight]);
    EXPECT_LT(b.runtime, a.runtime);
}

} // namespace
} // namespace maestro
