/**
 * @file
 * Tests for the staged analysis pipeline and its supporting pieces:
 * the LRU memo cache, the worker pool, stage fingerprints, cross-layer
 * dedup, the thread-parallel batch API's determinism, and the
 * energyFromCounts consistency contract (including grouped
 * convolutions, the regression for the per-group DRAM fill scaling).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "src/common/error.hh"
#include "src/common/lru_cache.hh"
#include "src/common/thread_pool.hh"
#include "src/core/analyzer.hh"
#include "src/core/pipeline.hh"
#include "src/dataflows/catalog.hh"
#include "src/dataflows/tuner.hh"
#include "src/dse/explorer.hh"
#include "src/model/zoo.hh"

namespace maestro
{
namespace
{

DimMap<Count>
dims(Count n, Count k, Count c, Count y, Count x, Count r, Count s)
{
    DimMap<Count> d;
    d[Dim::N] = n;
    d[Dim::K] = k;
    d[Dim::C] = c;
    d[Dim::Y] = y;
    d[Dim::X] = x;
    d[Dim::R] = r;
    d[Dim::S] = s;
    return d;
}

// ---------------------------------------------------------------- //
//                            LruCache                              //
// ---------------------------------------------------------------- //

TEST(LruCache, PutGetAndCounters)
{
    LruCache<int, int> cache(4);
    EXPECT_FALSE(cache.get(1).has_value());
    cache.put(1, 10);
    const auto hit = cache.get(1);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 10);

    const CacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.evictions, 0u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_DOUBLE_EQ(s.hitRate(), 0.5);
}

TEST(LruCache, EvictsLeastRecentlyUsed)
{
    LruCache<int, int> cache(2);
    cache.put(1, 10);
    cache.put(2, 20);
    cache.get(1); // refresh 1; 2 becomes LRU
    cache.put(3, 30);

    EXPECT_TRUE(cache.get(1).has_value());
    EXPECT_FALSE(cache.get(2).has_value());
    EXPECT_TRUE(cache.get(3).has_value());
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(LruCache, GetOrComputeComputesOncePerKey)
{
    LruCache<std::string, int> cache(8);
    int computed = 0;
    auto compute = [&] { return ++computed; };
    EXPECT_EQ(cache.getOrCompute("k", compute), 1);
    EXPECT_EQ(cache.getOrCompute("k", compute), 1);
    EXPECT_EQ(computed, 1);
}

TEST(LruCache, GetOrComputeDoesNotCacheExceptions)
{
    LruCache<std::string, int> cache(8);
    EXPECT_THROW(cache.getOrCompute(
                     "k", []() -> int { throw Error("boom"); }),
                 Error);
    EXPECT_EQ(cache.getOrCompute("k", [] { return 7; }), 7);
}

TEST(LruCache, ConcurrentGetOrComputeIsConsistent)
{
    LruCache<int, int> cache(64);
    ThreadPool::run(4, 256, [&](std::size_t i) {
        const int key = static_cast<int>(i % 16);
        const int value =
            cache.getOrCompute(key, [&] { return key * 3; });
        EXPECT_EQ(value, key * 3);
    });
}

// ---------------------------------------------------------------- //
//                            ThreadPool                            //
// ---------------------------------------------------------------- //

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    for (std::size_t workers : {0u, 1u, 3u}) {
        ThreadPool pool(workers);
        std::vector<std::atomic<int>> hits(97);
        pool.parallelFor(hits.size(), [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPool, ParallelForPropagatesFirstException)
{
    ThreadPool pool(3);
    EXPECT_THROW(pool.parallelFor(64,
                                  [&](std::size_t i) {
                                      if (i == 13)
                                          throw Error("boom");
                                  }),
                 Error);
    // The pool stays usable after an exception.
    std::atomic<int> count{0};
    pool.parallelFor(8, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, RunHelperHandlesSerialAndParallel)
{
    for (std::size_t threads : {0u, 1u, 4u}) {
        std::vector<std::atomic<int>> hits(31);
        ThreadPool::run(threads, hits.size(), [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

// ---------------------------------------------------------------- //
//                          Fingerprints                            //
// ---------------------------------------------------------------- //

TEST(Fingerprints, ShapeIgnoresLayerName)
{
    const Layer a("first", OpType::Conv2D, dims(1, 64, 3, 224, 224, 3, 3));
    const Layer b("second", OpType::Conv2D, dims(1, 64, 3, 224, 224, 3, 3));
    EXPECT_EQ(shapeFingerprint(a), shapeFingerprint(b));
}

TEST(Fingerprints, ShapeSeesEveryAnalysisInput)
{
    const Layer base("l", OpType::Conv2D, dims(1, 64, 3, 56, 56, 3, 3));
    Layer strided = base;
    strided.stride(2);
    Layer padded = base;
    padded.padding(1);
    Layer grouped("l", OpType::Conv2D, dims(1, 64, 3, 56, 56, 3, 3));
    grouped.groups(2);
    Layer sparse = base;
    sparse.inputDensity(0.5);

    EXPECT_NE(shapeFingerprint(base), shapeFingerprint(strided));
    EXPECT_NE(shapeFingerprint(base), shapeFingerprint(padded));
    EXPECT_NE(shapeFingerprint(base), shapeFingerprint(grouped));
    EXPECT_NE(shapeFingerprint(base), shapeFingerprint(sparse));
}

TEST(Fingerprints, DataflowIgnoresNameButSeesStructure)
{
    const Dataflow kcp = dataflows::byName("KC-P");
    Dataflow renamed("something-else");
    for (const Directive &d : kcp.directives())
        renamed.add(d);
    EXPECT_EQ(dataflowFingerprint(kcp), dataflowFingerprint(renamed));
    EXPECT_NE(dataflowFingerprint(kcp),
              dataflowFingerprint(dataflows::byName("YR-P")));
}

TEST(Fingerprints, HardwareSeesBufferAndEnergyKnobs)
{
    const AcceleratorConfig base = AcceleratorConfig::paperStudy();
    AcceleratorConfig bigger_l2 = base;
    bigger_l2.l2_bytes *= 2;
    const EnergyModel energy;
    EXPECT_NE(hardwareFingerprint(base, energy),
              hardwareFingerprint(bigger_l2, energy));
    EXPECT_EQ(hardwareFingerprint(base, energy),
              hardwareFingerprint(base, EnergyModel()));
}

// ---------------------------------------------------------------- //
//                       Pipeline memoization                       //
// ---------------------------------------------------------------- //

TEST(Pipeline, RepeatedCallHitsLayerCache)
{
    const Network net = zoo::vgg16();
    const Analyzer analyzer(AcceleratorConfig::paperStudy());
    const Dataflow df = dataflows::byName("KC-P");

    analyzer.analyzeLayer(net.layer("CONV2"), df);
    const PipelineStats cold = analyzer.pipelineStats();
    EXPECT_EQ(cold.layer.hits, 0u);
    EXPECT_EQ(cold.layer.misses, 1u);
    EXPECT_EQ(cold.evaluations, 1u);

    analyzer.analyzeLayer(net.layer("CONV2"), df);
    const PipelineStats warm = analyzer.pipelineStats();
    EXPECT_EQ(warm.layer.hits, 1u);
    EXPECT_EQ(warm.layer.misses, 1u);
    EXPECT_EQ(warm.evaluations, 2u);
}

TEST(Pipeline, ResNetDedupsRepeatedShapes)
{
    const Network net = zoo::resnet50();
    const Analyzer analyzer(AcceleratorConfig::paperStudy());
    analyzer.analyzeNetwork(net, dataflows::byName("KC-P"));

    const PipelineStats stats = analyzer.pipelineStats();
    EXPECT_EQ(stats.evaluations, net.layers().size());
    // ResNet's stacked bottleneck blocks repeat shapes: far fewer
    // unique evaluations than layers.
    EXPECT_LT(stats.layer.misses, net.layers().size());
    EXPECT_EQ(stats.layer.hits + stats.layer.misses,
              net.layers().size());
}

TEST(Pipeline, SweepingBuffersReusesBindAndFlatStages)
{
    const Network net = zoo::vgg16();
    const Layer &layer = net.layer("CONV2");
    const Dataflow df = dataflows::byName("KC-P");
    auto pipeline = std::make_shared<AnalysisPipeline>();

    // Same PEs and flags, different L2: the layer stage misses but
    // the bind/flat artifacts are reused.
    for (Count l2 : {1u << 20, 1u << 21, 1u << 22}) {
        AcceleratorConfig cfg = AcceleratorConfig::paperStudy();
        cfg.l2_bytes = l2;
        const Analyzer analyzer(cfg, EnergyModel(), pipeline);
        analyzer.analyzeLayer(layer, df);
    }
    const PipelineStats stats = pipeline->stats();
    EXPECT_EQ(stats.layer.misses, 3u);
    EXPECT_EQ(stats.binding.misses, 1u);
    EXPECT_EQ(stats.binding.hits, 2u);
    EXPECT_EQ(stats.flat.misses, 1u);
    EXPECT_EQ(stats.flat.hits, 2u);
}

TEST(Pipeline, ClearCachesKeepsAnswersIdentical)
{
    const Network net = zoo::vgg16();
    const Analyzer analyzer(AcceleratorConfig::paperStudy());
    const Dataflow df = dataflows::byName("YR-P");

    const LayerAnalysis before =
        analyzer.analyzeLayer(net.layer("CONV11"), df);
    analyzer.pipeline()->clearCaches();
    const LayerAnalysis after =
        analyzer.analyzeLayer(net.layer("CONV11"), df);
    EXPECT_EQ(before.runtime, after.runtime);
    EXPECT_EQ(before.energy(), after.energy());
    EXPECT_EQ(before.cost.noc_elements, after.cost.noc_elements);
}

// ---------------------------------------------------------------- //
//                    evaluateBatch determinism                     //
// ---------------------------------------------------------------- //

std::vector<Analyzer::BatchJob>
vggBatchJobs()
{
    const Network net = zoo::vgg16();
    std::vector<Analyzer::BatchJob> jobs;
    for (const char *df : {"KC-P", "YR-P", "YX-P"}) {
        for (const Layer &layer : net.layers())
            jobs.push_back({layer, dataflows::byName(df)});
    }
    return jobs;
}

TEST(EvaluateBatch, FourThreadsBitIdenticalToOneThread)
{
    const std::vector<Analyzer::BatchJob> jobs = vggBatchJobs();

    // Independent analyzers (fresh pipelines) so neither run sees the
    // other's cached artifacts.
    const Analyzer serial(AcceleratorConfig::paperStudy());
    const Analyzer parallel(AcceleratorConfig::paperStudy());
    const auto a = serial.evaluateBatch(jobs, 1);
    const auto b = parallel.evaluateBatch(jobs, 4);

    ASSERT_EQ(a.size(), jobs.size());
    ASSERT_EQ(b.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(a[i].ok) << a[i].error;
        ASSERT_TRUE(b[i].ok) << b[i].error;
        const LayerAnalysis &x = a[i].analysis;
        const LayerAnalysis &y = b[i].analysis;
        EXPECT_EQ(x.layer_name, y.layer_name);
        EXPECT_EQ(x.runtime, y.runtime);
        EXPECT_EQ(x.total_macs, y.total_macs);
        EXPECT_EQ(x.active_pes, y.active_pes);
        EXPECT_EQ(x.noc_bw_requirement, y.noc_bw_requirement);
        EXPECT_EQ(x.energy(), y.energy());
        EXPECT_EQ(x.onchipEnergy(), y.onchipEnergy());
        EXPECT_EQ(x.cost.l1_bytes_required, y.cost.l1_bytes_required);
        EXPECT_EQ(x.cost.l2_bytes_required, y.cost.l2_bytes_required);
        EXPECT_EQ(x.cost.noc_elements, y.cost.noc_elements);
        for (TensorKind t : kAllTensors) {
            EXPECT_EQ(x.cost.dram_reads[t], y.cost.dram_reads[t]);
            EXPECT_EQ(x.cost.l2_reads[t], y.cost.l2_reads[t]);
            EXPECT_EQ(x.cost.l1_reads[t], y.cost.l1_reads[t]);
        }
    }
}

TEST(EvaluateBatch, ReportsPerJobErrorsWithoutAborting)
{
    const Network net = zoo::vgg16();
    const Analyzer analyzer(AcceleratorConfig::paperStudy());
    const Dataflow df = dataflows::byName("KC-P");

    // An empty dataflow cannot bind: that job fails, its neighbors
    // succeed.
    std::vector<Analyzer::BatchJob> jobs;
    jobs.push_back({net.layer("CONV1"), df});
    jobs.push_back({net.layer("CONV1"), Dataflow("empty")});
    jobs.push_back({net.layer("CONV2"), df});

    const auto evals = analyzer.evaluateBatch(jobs, 2);
    ASSERT_EQ(evals.size(), 3u);
    EXPECT_TRUE(evals[0].ok);
    EXPECT_FALSE(evals[1].ok);
    EXPECT_FALSE(evals[1].error.empty());
    EXPECT_TRUE(evals[2].ok);

    // analyzeNetwork-style strict consumption throws instead.
    EXPECT_THROW(analyzer.analyzeNetwork(net, Dataflow("empty")),
                 Error);
}

TEST(EvaluateBatch, ConcurrentSharedAnalyzerHammer)
{
    // TSan target: many threads hammering one analyzer (and thus one
    // pipeline) on a handful of distinct keys.
    const Network net = zoo::vgg16();
    const Analyzer analyzer(AcceleratorConfig::paperStudy());
    const std::vector<Dataflow> dfs = {dataflows::byName("KC-P"),
                                       dataflows::byName("YR-P")};
    const std::vector<const Layer *> layers = {
        &net.layer("CONV1"), &net.layer("CONV2"), &net.layer("CONV11")};

    std::vector<double> runtimes(64);
    ThreadPool::run(4, runtimes.size(), [&](std::size_t i) {
        const LayerAnalysis la = analyzer.analyzeLayer(
            *layers[i % layers.size()], dfs[i % dfs.size()]);
        runtimes[i] = la.runtime;
    });
    for (std::size_t i = 0; i < runtimes.size(); ++i) {
        const LayerAnalysis la = analyzer.analyzeLayer(
            *layers[i % layers.size()], dfs[i % dfs.size()]);
        EXPECT_EQ(runtimes[i], la.runtime);
    }
}

// ---------------------------------------------------------------- //
//                  Tuner / explorer thread parity                  //
// ---------------------------------------------------------------- //

TEST(ThreadParity, TunerFourThreadsMatchesSerial)
{
    const Network net = zoo::vgg16();
    const Layer &layer = net.layer("CONV11");

    dataflows::TunerOptions serial_opts;
    const Analyzer a(AcceleratorConfig::paperStudy());
    const auto serial = dataflows::tuneDataflow(
        a, layer, dataflows::Objective::Edp, serial_opts);

    dataflows::TunerOptions parallel_opts;
    parallel_opts.num_threads = 4;
    const Analyzer b(AcceleratorConfig::paperStudy());
    const auto parallel = dataflows::tuneDataflow(
        b, layer, dataflows::Objective::Edp, parallel_opts);

    EXPECT_EQ(serial.candidates, parallel.candidates);
    EXPECT_EQ(serial.rejected, parallel.rejected);
    ASSERT_EQ(serial.ranked.size(), parallel.ranked.size());
    for (std::size_t i = 0; i < serial.ranked.size(); ++i) {
        EXPECT_EQ(serial.ranked[i].dataflow.name(),
                  parallel.ranked[i].dataflow.name());
        EXPECT_EQ(serial.ranked[i].objective_value,
                  parallel.ranked[i].objective_value);
        EXPECT_EQ(serial.ranked[i].runtime, parallel.ranked[i].runtime);
        EXPECT_EQ(serial.ranked[i].energy, parallel.ranked[i].energy);
    }
}

TEST(ThreadParity, ExplorerFourThreadsMatchesSerial)
{
    const Network net = zoo::vgg16();
    const Layer &layer = net.layer("CONV2");
    const Dataflow df = dataflows::byName("KC-P");
    const dse::DesignSpace space = dse::DesignSpace::small();

    dse::DseOptions serial_opts;
    const dse::Explorer a(AcceleratorConfig::paperStudy());
    const dse::DseResult serial =
        a.explore(layer, df, space, serial_opts);

    dse::DseOptions parallel_opts;
    parallel_opts.num_threads = 4;
    const dse::Explorer b(AcceleratorConfig::paperStudy());
    const dse::DseResult parallel =
        b.explore(layer, df, space, parallel_opts);

    EXPECT_EQ(serial.explored_points, parallel.explored_points);
    EXPECT_EQ(serial.evaluated_points, parallel.evaluated_points);
    EXPECT_EQ(serial.valid_points, parallel.valid_points);
    ASSERT_EQ(serial.samples.size(), parallel.samples.size());
    auto expectSamePoint = [](const dse::DesignPoint &x,
                              const dse::DesignPoint &y) {
        EXPECT_EQ(x.num_pes, y.num_pes);
        EXPECT_EQ(x.l1_bytes, y.l1_bytes);
        EXPECT_EQ(x.l2_bytes, y.l2_bytes);
        EXPECT_EQ(x.noc_bandwidth, y.noc_bandwidth);
        EXPECT_EQ(x.runtime, y.runtime);
        EXPECT_EQ(x.energy, y.energy);
        EXPECT_EQ(x.edp, y.edp);
    };
    expectSamePoint(serial.best_throughput, parallel.best_throughput);
    expectSamePoint(serial.best_energy, parallel.best_energy);
    expectSamePoint(serial.best_edp, parallel.best_edp);
    for (std::size_t i = 0; i < serial.samples.size(); ++i)
        expectSamePoint(serial.samples[i], parallel.samples[i]);
}

// ---------------------------------------------------------------- //
//                  energyFromCounts consistency                    //
// ---------------------------------------------------------------- //

/**
 * For density-1 layers, re-deriving energy from the activity counts
 * at the analyzed configuration's own capacities must reproduce the
 * analyzer's total exactly (same terms, same per-group residency
 * decision). Grouped convolutions exercise the cost.groups scaling:
 * before the fix the per-group DRAM fill was compared against the
 * all-groups dram_reads, understating grouped DRAM energy.
 */
struct ConsistencyCase
{
    const char *model;
    const char *layer;
    const char *dataflow;
};

class EnergyConsistency
    : public ::testing::TestWithParam<ConsistencyCase>
{
};

TEST_P(EnergyConsistency, ReproducesAnalyzerTotal)
{
    const ConsistencyCase &cc = GetParam();
    const Network net = zoo::byName(cc.model);
    const AcceleratorConfig cfg = AcceleratorConfig::paperStudy();
    const Analyzer analyzer(cfg);
    const LayerAnalysis la = analyzer.analyzeLayer(
        net.layer(cc.layer), dataflows::byName(cc.dataflow));

    const double derived = dse::energyFromCounts(
        la.cost, cfg.l1_bytes, cfg.l2_bytes, cfg.precision_bytes,
        cfg.noc.avgLatency(), EnergyModel());
    // Same terms in a different summation order: allow a few ulps.
    EXPECT_NEAR(derived, la.energy(), 1e-9 * la.energy());
}

INSTANTIATE_TEST_SUITE_P(
    Pipeline, EnergyConsistency,
    ::testing::Values(ConsistencyCase{"vgg16", "CONV2", "KC-P"},
                      ConsistencyCase{"vgg16", "CONV11", "YX-P"},
                      ConsistencyCase{"alexnet", "CONV2", "YR-P"},
                      ConsistencyCase{"resnext50", "S2B1_3x3", "KC-P"},
                      ConsistencyCase{"mobilenetv2", "B2_dw", "YR-P"},
                      ConsistencyCase{"mobilenetv2", "B2_expand",
                                      "KC-P"}),
    [](const ::testing::TestParamInfo<ConsistencyCase> &info) {
        std::string name = std::string(info.param.model) + '_' +
                           info.param.layer + '_' +
                           info.param.dataflow;
        for (char &ch : name) {
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        }
        return name;
    });

TEST(EnergyConsistency, GroupScalingMattersForGroupedConvs)
{
    // resnext50's grouped 3x3 (32 groups): dropping the groups factor
    // (the pre-fix behavior) must understate DRAM energy.
    const Network net = zoo::resnext50();
    const AcceleratorConfig cfg = AcceleratorConfig::paperStudy();
    const Analyzer analyzer(cfg);
    const LayerAnalysis la = analyzer.analyzeLayer(
        net.layer("S2B1_3x3"), dataflows::byName("KC-P"));
    ASSERT_EQ(la.cost.groups, 32.0);

    CostResult ungrouped = la.cost;
    ungrouped.groups = 1.0;
    const double fixed = dse::energyFromCounts(
        la.cost, cfg.l1_bytes, cfg.l2_bytes, cfg.precision_bytes,
        cfg.noc.avgLatency(), EnergyModel());
    const double broken = dse::energyFromCounts(
        ungrouped, cfg.l1_bytes, cfg.l2_bytes, cfg.precision_bytes,
        cfg.noc.avgLatency(), EnergyModel());
    EXPECT_LT(broken, fixed);
    EXPECT_NEAR(fixed, la.energy(), 1e-9 * la.energy());
}

} // namespace
} // namespace maestro
