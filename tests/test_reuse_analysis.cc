/**
 * @file
 * Unit tests for the reuse analysis engine, anchored on the paper's
 * Fig. 5 pedagogical 1-D dataflows whose reuse classification the
 * paper states explicitly.
 */

#include <gtest/gtest.h>

#include "src/core/cluster_analysis.hh"
#include "src/core/reuse_analysis.hh"
#include "src/core/tensor_analysis.hh"
#include "src/dataflows/catalog.hh"

namespace maestro
{
namespace
{

/** The paper's Fig. 4 1-D conv: X'=12 outputs, S=6 weights. */
Layer
conv1d(Count x = 17, Count s = 6)
{
    DimMap<Count> d;
    d[Dim::N] = 1;
    d[Dim::K] = 1;
    d[Dim::C] = 1;
    d[Dim::Y] = 1;
    d[Dim::X] = x;
    d[Dim::R] = 1;
    d[Dim::S] = s;
    return Layer("conv1d", OpType::Conv2D, d);
}

struct Analysis
{
    BoundDataflow bound;
    std::vector<LevelReuse> reuse;
};

Analysis
analyze(const Dataflow &df, const Layer &layer, Count pes)
{
    Analysis a;
    a.bound = bindDataflow(df, layer, pes);
    a.reuse = analyzeReuse(a.bound, analyzeTensors(layer),
                           layer.type() == OpType::DepthwiseConv);
    return a;
}

/** Index of the loop over `dim` in a level's nest, or npos. */
std::size_t
loopIndex(const LevelReuse &ru, Dim dim)
{
    for (std::size_t i = 0; i < ru.loops.size(); ++i) {
        if (!ru.loops[i].is_fold && ru.loops[i].dim == dim)
            return i;
    }
    return static_cast<std::size_t>(-1);
}

// ---- Fig. 5(A): SpatialMap X' / TemporalMap S = output stationary,
//      spatial multicast of weights, partial input halo. ----
TEST(ReuseAnalysis, Fig5aOutputStationary)
{
    const Analysis a =
        analyze(dataflows::fig5OutputStationary(), conv1d(), 3);
    const LevelReuse &ru = a.reuse[0];

    // Outputs are temporally reused (stationary): the S loop advance
    // fetches no output data.
    const std::size_t s_loop = loopIndex(ru, Dim::S);
    ASSERT_NE(s_loop, static_cast<std::size_t>(-1));
    EXPECT_DOUBLE_EQ(
        ru.traffic[TensorKind::Output].delta_per_loop[s_loop], 0.0);

    // Weights are identical across PEs: spatial multicast.
    EXPECT_TRUE(ru.traffic[TensorKind::Weight].fully_shared);

    // Inputs overlap between neighbours (halo): partially shared.
    const TensorLevelTraffic &in = ru.traffic[TensorKind::Input];
    EXPECT_FALSE(in.fully_shared);
    EXPECT_LT(in.spatial_unique_ratio, 1.0);
    EXPECT_GT(in.spatial_unique_ratio, 1.0 / 3.0);

    // Outputs are distributed, not reduced, across PEs.
    EXPECT_FALSE(ru.traffic[TensorKind::Output].spatial_reduction);
}

// ---- Fig. 5(B): TemporalMap X' / SpatialMap S = weight stationary
//      w.r.t. X' iteration, spatial reduction of outputs. ----
TEST(ReuseAnalysis, Fig5bWeightStationary)
{
    const Analysis a =
        analyze(dataflows::fig5WeightStationary(), conv1d(), 3);
    const LevelReuse &ru = a.reuse[0];

    // The X' advance fetches no weight data (weights stationary).
    const std::size_t x_loop = loopIndex(ru, Dim::X);
    ASSERT_NE(x_loop, static_cast<std::size_t>(-1));
    EXPECT_DOUBLE_EQ(
        ru.traffic[TensorKind::Weight].delta_per_loop[x_loop], 0.0);

    // All PEs produce partials for the same outputs: spatial reduction.
    EXPECT_TRUE(ru.traffic[TensorKind::Output].spatial_reduction);

    // The X' advance slides the input window: delta smaller than the
    // full chunk (convolutional reuse).
    const TensorLevelTraffic &in = ru.traffic[TensorKind::Input];
    EXPECT_GT(in.delta_per_loop[x_loop], 0.0);
    EXPECT_LT(in.delta_per_loop[x_loop], in.chunk_volume);
}

// ---- Fig. 5(C): SpatialMap S outer, TemporalMap X' inner. ----
TEST(ReuseAnalysis, Fig5cCollaborativeOutputStationary)
{
    const Analysis a =
        analyze(dataflows::fig5CollabOutputStationary(), conv1d(), 3);
    const LevelReuse &ru = a.reuse[0];

    // Weights distributed across PEs (one filter element each):
    // no multicast of weights.
    EXPECT_FALSE(ru.traffic[TensorKind::Weight].fully_shared);
    // Spatial reduction of outputs across PEs.
    EXPECT_TRUE(ru.traffic[TensorKind::Output].spatial_reduction);
    // Weight stationary across the X' iteration.
    const std::size_t x_loop = loopIndex(ru, Dim::X);
    EXPECT_DOUBLE_EQ(
        ru.traffic[TensorKind::Weight].delta_per_loop[x_loop], 0.0);
}

// ---- Fig. 5(E): SpatialMap(2,2) S exposes partial temporal reuse of
//      inputs via the larger tile. ----
TEST(ReuseAnalysis, Fig5eTiledMapping)
{
    const Analysis a = analyze(
        dataflows::fig5TiledCollabWeightStationary(), conv1d(), 3);
    const LevelReuse &ru = a.reuse[0];
    // Each PE now holds two weights.
    EXPECT_DOUBLE_EQ(ru.traffic[TensorKind::Weight].chunk_volume, 2.0);
    EXPECT_TRUE(ru.traffic[TensorKind::Output].spatial_reduction);
}

// ---- Fig. 5(F): two cluster levels. ----
TEST(ReuseAnalysis, Fig5fClustered)
{
    const Analysis a = analyze(
        dataflows::fig5ClusteredCollabWeightStationary(), conv1d(), 6);
    ASSERT_EQ(a.reuse.size(), 2u);
    // Inner level: S spatially distributed within the cluster,
    // outputs spatially reduced.
    EXPECT_TRUE(
        a.reuse[1].traffic[TensorKind::Output].spatial_reduction);
    EXPECT_FALSE(a.reuse[1].traffic[TensorKind::Weight].fully_shared);
}

// ---- Eyeriss diagonal: inner level of YR-P. ----
TEST(ReuseAnalysis, YrpDiagonalReducesOutputsSpatially)
{
    Layer layer("c", OpType::Conv2D, [] {
        DimMap<Count> d;
        d[Dim::N] = 1;
        d[Dim::K] = 4;
        d[Dim::C] = 4;
        d[Dim::Y] = 16;
        d[Dim::X] = 16;
        d[Dim::R] = 3;
        d[Dim::S] = 3;
        return d;
    }());
    const Analysis a = analyze(dataflows::yrPartitioned(), layer, 12);
    const LevelReuse &inner = a.reuse[1];
    // Co-mapped Y and R shifts cancel in output space: the cluster's
    // PEs produce partials for the same output row (paper Sec. 3.4).
    EXPECT_TRUE(inner.traffic[TensorKind::Output].spatial_reduction);
    // Inputs are disjoint rows across the cluster's PEs.
    EXPECT_FALSE(inner.traffic[TensorKind::Input].fully_shared);
    // Weights: each PE holds a different filter row.
    EXPECT_FALSE(inner.traffic[TensorKind::Weight].fully_shared);
}

// ---- KC-P level 1: input-channel parallelism (NVDLA). ----
TEST(ReuseAnalysis, KcpInnerSpatialReduction)
{
    Layer layer("c", OpType::Conv2D, [] {
        DimMap<Count> d;
        d[Dim::N] = 1;
        d[Dim::K] = 128;
        d[Dim::C] = 128;
        d[Dim::Y] = 14;
        d[Dim::X] = 14;
        d[Dim::R] = 3;
        d[Dim::S] = 3;
        return d;
    }());
    const Analysis a = analyze(dataflows::kcPartitioned(), layer, 256);
    // Level 0: inputs are fully shared across the K-partitioned
    // clusters (spatial multicast).
    EXPECT_TRUE(a.reuse[0].traffic[TensorKind::Input].fully_shared);
    // Level 1: 64-way spatial reduction over input channels.
    EXPECT_TRUE(a.reuse[1].traffic[TensorKind::Output].spatial_reduction);
    EXPECT_FALSE(a.reuse[1].traffic[TensorKind::Weight].fully_shared);
}

// ---- Conservation property: chunk + deltas sweep the extent. ----
TEST(ReuseAnalysis, WeightTrafficSweepsWholeTensorForCp)
{
    // C-P iterates K temporally with chunk 1 and spatially maps C;
    // per-unit weight traffic over a full execution must equal the
    // unit's share of the weight tensor times the K revisits.
    Layer layer = conv1d();
    const Analysis a =
        analyze(dataflows::cPartitioned(), layer, 4);
    const LevelReuse &ru = a.reuse[0];
    // 1-D conv, C=1: single PE active; weight = 6 elements; X' loop
    // forces no weight refetch (weights coupled only to S here).
    const TensorLevelTraffic &w = ru.traffic[TensorKind::Weight];
    EXPECT_DOUBLE_EQ(w.chunk_volume, 6.0);
    EXPECT_DOUBLE_EQ(w.traffic_per_unit, 6.0);
}

TEST(ReuseAnalysis, TotalStepsMatchesLoopProduct)
{
    Layer layer("c", OpType::Conv2D, [] {
        DimMap<Count> d;
        d[Dim::N] = 1;
        d[Dim::K] = 8;
        d[Dim::C] = 8;
        d[Dim::Y] = 10;
        d[Dim::X] = 10;
        d[Dim::R] = 3;
        d[Dim::S] = 3;
        return d;
    }());
    const Analysis a = analyze(dataflows::xPartitioned(), layer, 8);
    const LevelReuse &ru = a.reuse[0];
    double product = 1.0;
    for (const auto &loop : ru.loops)
        product *= static_cast<double>(loop.steps);
    EXPECT_DOUBLE_EQ(ru.total_steps, product);
    EXPECT_DOUBLE_EQ(ru.total_steps,
                     static_cast<double>(a.bound.levels[0].total_steps));
}

} // namespace
} // namespace maestro
