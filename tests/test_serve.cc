/**
 * @file
 * Loopback tests for the analysis server: routing and status codes,
 * byte-identity between server responses and the direct handler
 * call (the CLI's `--format json` path), cross-request stage-cache
 * reuse observable through GET /stats, exact stage-counter
 * accounting, concurrent mixed-shape storms, 503 backpressure under
 * a saturated queue, 408 deadline expiry, keep-alive, graceful
 * drain, and the admission/histogram primitives. Also the
 * observability surfaces: GET /metrics Prometheus exposition,
 * X-Trace-Id headers, and the guarantee that enabling the tracer
 * never changes response bytes.
 *
 * Suites are prefixed "Serve" so the CI thread-sanitizer job picks
 * them up alongside the ThreadPool/Pipeline concurrency tests.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/version.hh"
#include "src/frontend/serializer.hh"
#include "src/model/zoo.hh"
#include "src/obs/obs.hh"
#include "src/obs/shared_metrics.hh"
#include "src/serve/admission.hh"
#include "src/serve/handlers.hh"
#include "src/serve/http.hh"
#include "src/serve/server.hh"

namespace maestro
{
namespace serve
{
namespace
{

// ---------------------------------------------------------------- //
//                       Loopback test client                       //
// ---------------------------------------------------------------- //

/** Server under test: run() on a background thread, ephemeral port. */
class TestServer
{
  public:
    explicit TestServer(ServeOptions options = ServeOptions())
    {
        options.port = 0; // ephemeral; resolved via port()
        server_ = std::make_unique<AnalysisServer>(ServeContext(),
                                                   options);
        server_->start();
        thread_ = std::thread([this] { server_->run(); });
    }

    ~TestServer() { stop(); }

    void
    stop()
    {
        if (thread_.joinable()) {
            server_->requestStop();
            thread_.join();
        }
    }

    /** Initiates the drain WITHOUT joining: the server keeps
     *  lingering connections alive while tests probe drain
     *  behaviour; follow with stop() to finish. */
    void beginStop() { server_->requestStop(); }

    std::uint16_t port() const { return server_->port(); }

  private:
    std::unique_ptr<AnalysisServer> server_;
    std::thread thread_;
};

/** One parsed client-side response. */
struct ClientResponse
{
    int status = -1; ///< -1: connection closed before a response
    std::map<std::string, std::string> headers; ///< lowercased names
    std::string body;
};

int
connectLoopback(std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    // A stuck server should fail the test, not hang ctest.
    struct timeval tv;
    tv.tv_sec = 30;
    tv.tv_usec = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

void
sendAll(int fd, const std::string &bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::send(fd, bytes.data() + off, bytes.size() - off, 0);
        ASSERT_GT(n, 0);
        off += static_cast<std::size_t>(n);
    }
}

std::string
lowerTrim(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](char c) {
        return static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    });
    const auto b = s.find_first_not_of(" \t");
    const auto e = s.find_last_not_of(" \t");
    return b == std::string::npos ? "" : s.substr(b, e - b + 1);
}

/** Reads exactly one response (Content-Length framing). */
ClientResponse
readResponse(int fd)
{
    ClientResponse r;
    std::string buf;
    std::size_t header_end;
    while ((header_end = buf.find("\r\n\r\n")) == std::string::npos) {
        char tmp[4096];
        const ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
        if (n <= 0)
            return r;
        buf.append(tmp, static_cast<std::size_t>(n));
    }
    r.status = std::atoi(buf.c_str() + 9); // skip "HTTP/1.1 "
    std::size_t pos = buf.find("\r\n") + 2;
    while (pos < header_end) {
        const std::size_t eol = buf.find("\r\n", pos);
        const std::string line = buf.substr(pos, eol - pos);
        const std::size_t colon = line.find(':');
        if (colon != std::string::npos)
            r.headers[lowerTrim(line.substr(0, colon))] =
                lowerTrim(line.substr(colon + 1));
        pos = eol + 2;
    }
    std::size_t content_length = 0;
    const auto cl = r.headers.find("content-length");
    if (cl != r.headers.end())
        content_length = std::stoul(cl->second);
    r.body = buf.substr(header_end + 4);
    while (r.body.size() < content_length) {
        char tmp[4096];
        const ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
        if (n <= 0)
            break;
        r.body.append(tmp, static_cast<std::size_t>(n));
    }
    r.body.resize(std::min(r.body.size(), content_length));
    return r;
}

std::string
getRequest(const std::string &target, bool keep_alive = true)
{
    std::string out = "GET " + target + " HTTP/1.1\r\nHost: t\r\n";
    if (!keep_alive)
        out += "Connection: close\r\n";
    return out + "\r\n";
}

std::string
postRequest(const std::string &target, const std::string &body,
            const std::string &extra_header = "")
{
    std::string out = "POST " + target + " HTTP/1.1\r\nHost: t\r\n";
    if (!extra_header.empty())
        out += extra_header + "\r\n";
    return out + "Content-Length: " + std::to_string(body.size()) +
           "\r\n\r\n" + body;
}

/** Connect, send one request, read one response, close. */
ClientResponse
oneShot(std::uint16_t port, const std::string &raw)
{
    ClientResponse r;
    const int fd = connectLoopback(port);
    EXPECT_GE(fd, 0);
    if (fd < 0)
        return r;
    sendAll(fd, raw);
    r = readResponse(fd);
    ::close(fd);
    return r;
}

// ---------------------------------------------------------------- //
//                        Payloads + helpers                        //
// ---------------------------------------------------------------- //

/** Single-conv network; shape varies with `k` (mixed-shape storms). */
std::string
tinyNetwork(int k)
{
    return "Network tiny" + std::to_string(k) +
           " {\n"
           "  Layer conv {\n"
           "    Type: CONV;\n"
           "    Dimensions { K: " +
           std::to_string(k) +
           "; C: 4; R: 3; S: 3; Y: 16; X: 16; }\n"
           "  }\n"
           "}\n";
}

/** Same shape, `layers` copies — the shape-dedup stats script. */
std::string
repeatedShapeNetwork(int layers)
{
    std::string out = "Network rep {\n";
    for (int i = 0; i < layers; ++i)
        out += "  Layer conv" + std::to_string(i) +
               " { Type: CONV; Dimensions "
               "{ K: 8; C: 4; R: 3; S: 3; Y: 16; X: 16; } }\n";
    return out + "}\n";
}

/** Many distinct shapes: expensive enough to hold a worker busy. */
std::string
heavyPayload()
{
    Network net("heavy");
    for (int i = 0; i < 120; ++i) {
        DimMap<Count> d(1);
        d[Dim::K] = 16 + i % 17;
        d[Dim::C] = 8 + i % 5;
        d[Dim::R] = 3;
        d[Dim::S] = 3;
        d[Dim::Y] = 32 + i % 9;
        d[Dim::X] = 32 + i % 7;
        std::string name = "l";
        name += std::to_string(i);
        net.addLayer(Layer(name, OpType::Conv2D, d));
    }
    return frontend::serialize(net);
}

/**
 * Single conv sized so an exact-walk simulation (~8K nest steps)
 * holds a worker busy for ~100ms: slow enough to overlap concurrent
 * clients deterministically, fast enough not to stall ctest.
 */
std::string
midNetwork()
{
    return "Network mid {\n"
           "  Layer conv {\n"
           "    Type: CONV;\n"
           "    Dimensions { K: 16; C: 16; R: 3; S: 3; "
           "Y: 24; X: 24; }\n"
           "  }\n"
           "}\n";
}

/**
 * Extracts the integer member `field` of JSON object `object` from a
 * body produced by JsonWriter (known key order, no whitespace).
 */
std::uint64_t
jsonField(const std::string &body, const std::string &object,
          const std::string &field)
{
    const std::string obj_marker = "\"" + object + "\":{";
    const std::size_t obj = body.find(obj_marker);
    EXPECT_NE(obj, std::string::npos) << object << " in " << body;
    if (obj == std::string::npos)
        return 0;
    const std::string field_marker = "\"" + field + "\":";
    const std::size_t at =
        body.find(field_marker, obj + obj_marker.size());
    EXPECT_NE(at, std::string::npos) << field << " in " << body;
    if (at == std::string::npos)
        return 0;
    return std::strtoull(
        body.c_str() + at + field_marker.size(), nullptr, 10);
}

/** Extracts the string member `field` from a JsonWriter body. */
std::string
jsonString(const std::string &body, const std::string &field)
{
    const std::string marker = "\"" + field + "\":\"";
    const std::size_t at = body.find(marker);
    EXPECT_NE(at, std::string::npos) << field << " in " << body;
    if (at == std::string::npos)
        return "";
    const std::size_t end = body.find('"', at + marker.size());
    return body.substr(at + marker.size(),
                       end - at - marker.size());
}

/** Polls GET /jobs/<id> until the job leaves queued/running. */
ClientResponse
waitJob(std::uint16_t port, const std::string &id)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(30);
    ClientResponse r;
    while (std::chrono::steady_clock::now() < deadline) {
        r = oneShot(port, getRequest("/jobs/" + id));
        const bool pending =
            r.status == 200 &&
            (r.body.find("\"state\":\"queued\"") !=
                 std::string::npos ||
             r.body.find("\"state\":\"running\"") !=
                 std::string::npos);
        if (!pending)
            return r;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ADD_FAILURE() << "job " << id << " never reached a terminal "
                  << "state; last body: " << r.body;
    return r;
}

/** The reference bytes the server must reproduce for /analyze. */
std::string
referenceAnalyze(const std::string &dsl, const QueryParams &params)
{
    const RequestInputs inputs = resolveRequest(
        dsl, params, AcceleratorConfig::paperStudy());
    return analyzeJson(inputs, std::make_shared<AnalysisPipeline>(),
                       EnergyModel());
}

/** The reference bytes the server must reproduce for /simulate. */
std::string
referenceSimulate(const std::string &dsl, const QueryParams &params)
{
    const RequestInputs inputs = resolveRequest(
        dsl, params, AcceleratorConfig::paperStudy());
    return simulateJson(inputs, params,
                        std::make_shared<AnalysisPipeline>(),
                        EnergyModel());
}

// ---------------------------------------------------------------- //
//                     Routing and status codes                     //
// ---------------------------------------------------------------- //

TEST(Serve, HealthzStatsAndRouting)
{
    TestServer server;
    const std::uint16_t port = server.port();
    ASSERT_GT(port, 0);

    const ClientResponse health =
        oneShot(port, getRequest("/healthz"));
    EXPECT_EQ(health.status, 200);
    EXPECT_EQ(health.body, healthzJson());
    EXPECT_EQ(health.headers.at("content-type"), "application/json");
    // The liveness probe carries the build version.
    EXPECT_NE(health.body.find(std::string("\"version\":\"") +
                               kVersion + "\""),
              std::string::npos);

    const ClientResponse stats = oneShot(port, getRequest("/stats"));
    EXPECT_EQ(stats.status, 200);
    EXPECT_NE(stats.body.find("\"pipeline\""), std::string::npos);
    EXPECT_NE(stats.body.find("\"queue\""), std::string::npos);

    EXPECT_EQ(oneShot(port, getRequest("/nope")).status, 404);
    EXPECT_EQ(oneShot(port, getRequest("/analyze")).status, 405);
    EXPECT_EQ(oneShot(port, postRequest("/healthz", "x")).status,
              405);

    const ClientResponse bad =
        oneShot(port, postRequest("/analyze", "Nonsense ("));
    EXPECT_EQ(bad.status, 400);
    EXPECT_NE(bad.body.find("\"error\""), std::string::npos);

    const ClientResponse empty =
        oneShot(port, postRequest("/analyze", ""));
    EXPECT_EQ(empty.status, 400);

    // Parser-level error: malformed request line closes with 400.
    const ClientResponse mangled = oneShot(port, "BROKEN\r\n\r\n");
    EXPECT_EQ(mangled.status, 400);
}

// ---------------------------------------------------------------- //
//                   Byte-identity with handlers                    //
// ---------------------------------------------------------------- //

TEST(Serve, AnalyzeMatchesDirectHandlerByteForByte)
{
    TestServer server;
    const std::string dsl = tinyNetwork(8);

    const ClientResponse got = oneShot(
        server.port(), postRequest("/analyze?dataflow=C-P", dsl));
    ASSERT_EQ(got.status, 200);
    EXPECT_EQ(got.body,
              referenceAnalyze(dsl, QueryParams{{"dataflow", "C-P"}}));
}

TEST(Serve, DseAndTuneEndpoints)
{
    TestServer server;
    const std::uint16_t port = server.port();
    const std::string dsl = tinyNetwork(8);

    const ClientResponse dse =
        oneShot(port, postRequest("/dse?dataflow=C-P", dsl));
    ASSERT_EQ(dse.status, 200) << dse.body;
    EXPECT_NE(dse.body.find("\"endpoint\":\"dse\""),
              std::string::npos);
    EXPECT_NE(dse.body.find("\"best_edp\""), std::string::npos);
    EXPECT_GT(jsonField(dse.body, "best_throughput", "num_pes"), 0u);

    const ClientResponse tune =
        oneShot(port, postRequest("/tune?objective=edp", dsl));
    ASSERT_EQ(tune.status, 200) << tune.body;
    EXPECT_NE(tune.body.find("\"endpoint\":\"tune\""),
              std::string::npos);
    EXPECT_NE(tune.body.find("\"ranked\""), std::string::npos);
    EXPECT_NE(tune.body.find("\"winner\""), std::string::npos);

    // dse with several dataflows resolved (no ?dataflow) is a 400.
    EXPECT_EQ(oneShot(port, postRequest("/dse", dsl)).status, 400);
}

TEST(Serve, SimulateMatchesDirectHandlerByteForByte)
{
    const std::string dsl = tinyNetwork(8);
    const QueryParams params{{"dataflow", "C-P"}};
    const std::string expected = referenceSimulate(dsl, params);
    const std::string raw =
        postRequest("/simulate?dataflow=C-P", dsl);

    TestServer server;
    const ClientResponse got = oneShot(server.port(), raw);
    ASSERT_EQ(got.status, 200) << got.body;
    EXPECT_EQ(got.body, expected);
    EXPECT_NE(got.body.find("\"endpoint\":\"simulate\""),
              std::string::npos);
    EXPECT_NE(got.body.find("\"mode\":\"periodic\""),
              std::string::npos);
    EXPECT_NE(got.body.find("\"step_classes\""), std::string::npos);

    // The worker-pool size must never leak into response bytes: a
    // 4-worker deployment serves the same JSON as the direct call.
    ServeOptions options;
    options.worker_threads = 4;
    TestServer pooled(options);
    const ClientResponse via_pool = oneShot(pooled.port(), raw);
    ASSERT_EQ(via_pool.status, 200) << via_pool.body;
    EXPECT_EQ(via_pool.body, expected);
}

TEST(Serve, SimulateExactOracleMatchesPeriodicNumbers)
{
    TestServer server;
    const std::uint16_t port = server.port();
    const std::string dsl = tinyNetwork(8);

    const ClientResponse periodic =
        oneShot(port, postRequest("/simulate?dataflow=C-P", dsl));
    const ClientResponse exact = oneShot(
        port, postRequest("/simulate?dataflow=C-P&exact=on", dsl));
    ASSERT_EQ(periodic.status, 200) << periodic.body;
    ASSERT_EQ(exact.status, 200) << exact.body;

    // The fast path pins every numeric field to the naive walker's;
    // only the "mode" tag may differ between the two bodies.
    const std::string exact_tag = "\"mode\":\"exact\"";
    std::string normalized = exact.body;
    const std::size_t at = normalized.find(exact_tag);
    ASSERT_NE(at, std::string::npos) << exact.body;
    normalized.replace(at, exact_tag.size(), "\"mode\":\"periodic\"");
    EXPECT_EQ(normalized, periodic.body);
}

TEST(Serve, SimulateGuardLayerErrorsAndStatsCounter)
{
    TestServer server;
    const std::uint16_t port = server.port();

    // The exact-path work guard surfaces as a client error, naming
    // the guard in the body rather than burning a worker.
    const ClientResponse guarded = oneShot(
        port, postRequest("/simulate?dataflow=C-P&exact=on&"
                          "max_steps=10",
                          tinyNetwork(8)));
    EXPECT_EQ(guarded.status, 400);
    EXPECT_NE(guarded.body.find("\"error\""), std::string::npos);

    // A non-positive guard is rejected up front.
    EXPECT_EQ(oneShot(port, postRequest(
                                "/simulate?dataflow=C-P&max_steps=0",
                                tinyNetwork(8)))
                  .status,
              400);

    // Multi-layer networks need ?layer=; with it, the request lands.
    const std::string two = repeatedShapeNetwork(2);
    EXPECT_EQ(
        oneShot(port, postRequest("/simulate?dataflow=C-P", two))
            .status,
        400);
    EXPECT_EQ(oneShot(port, postRequest(
                                "/simulate?dataflow=C-P&layer=conv1",
                                two))
                  .status,
              200);

    const std::string stats =
        oneShot(port, getRequest("/stats")).body;
    EXPECT_EQ(jsonField(stats, "requests", "simulate"), 4u);
}

TEST(Serve, SimulateSharesBackpressureAndDeadlinePaths)
{
    // /simulate rides the same admission/deadline machinery as the
    // other analysis endpoints; pin both failure paths for it.
    const std::string slow_raw = postRequest(
        "/simulate?dataflow=C-P&exact=on", midNetwork());

    {
        ServeOptions options;
        options.worker_threads = 1;
        options.queue_capacity = 1;
        options.deadline_ms = 60000;
        TestServer server(options);
        const std::uint16_t port = server.port();

        constexpr int kClients = 4;
        std::mutex mutex;
        std::condition_variable cv;
        int ready = 0;
        bool go = false;
        std::vector<ClientResponse> responses(kClients);
        std::vector<std::thread> clients;
        for (int i = 0; i < kClients; ++i) {
            clients.emplace_back([&, i] {
                {
                    std::unique_lock<std::mutex> lock(mutex);
                    if (++ready == kClients) {
                        go = true;
                        cv.notify_all();
                    } else {
                        cv.wait(lock, [&] { return go; });
                    }
                }
                responses[i] = oneShot(port, slow_raw);
            });
        }
        for (std::thread &t : clients)
            t.join();

        int ok = 0;
        int rejected = 0;
        for (const ClientResponse &r : responses) {
            if (r.status == 200) {
                ++ok;
            } else if (r.status == 503) {
                ++rejected;
                EXPECT_EQ(r.headers.count("retry-after"), 1u);
            } else {
                ADD_FAILURE() << "unexpected status " << r.status;
            }
        }
        EXPECT_GE(ok, 1);
        EXPECT_GE(rejected, 1);
    }

    {
        ServeOptions options;
        options.worker_threads = 2;
        options.deadline_ms = 1; // far below the exact walk's cost
        TestServer server(options);
        const ClientResponse slow =
            oneShot(server.port(), slow_raw);
        EXPECT_EQ(slow.status, 408);
        EXPECT_NE(slow.body.find("\"error\""), std::string::npos);
    }
}

// ---------------------------------------------------------------- //
//            Cross-request cache reuse (acceptance test)           //
// ---------------------------------------------------------------- //

TEST(Serve, CrossRequestCacheReuseVisibleInStats)
{
    TestServer server;
    const std::uint16_t port = server.port();
    const std::string raw =
        postRequest("/analyze?dataflow=C-P", tinyNetwork(8));

    const ClientResponse first = oneShot(port, raw);
    ASSERT_EQ(first.status, 200);
    EXPECT_EQ(first.headers.at("x-result-cache"), "miss");
    const std::uint64_t hits_after_first = jsonField(
        oneShot(port, getRequest("/stats")).body, "aggregate",
        "hits");

    // The identical repeat short-circuits at the content-addressed
    // result cache: byte-identical body, no pipeline work at all.
    const ClientResponse second = oneShot(port, raw);
    ASSERT_EQ(second.status, 200);
    EXPECT_EQ(second.body, first.body);
    EXPECT_EQ(second.headers.at("x-result-cache"), "hit");
    std::string stats = oneShot(port, getRequest("/stats")).body;
    EXPECT_EQ(jsonField(stats, "result_cache", "hits"), 1u);
    EXPECT_GE(jsonField(stats, "result_cache", "served_bytes"),
              first.body.size());
    EXPECT_EQ(jsonField(stats, "aggregate", "hits"),
              hits_after_first);

    // A variant request (same layer, explicit ?layer=) has a new
    // canonical key — result-cache miss — but underneath it the
    // shared pipeline serves the repeat from its stage caches.
    const ClientResponse third = oneShot(
        port, postRequest("/analyze?dataflow=C-P&layer=conv",
                          tinyNetwork(8)));
    ASSERT_EQ(third.status, 200);
    EXPECT_EQ(third.headers.at("x-result-cache"), "miss");
    stats = oneShot(port, getRequest("/stats")).body;
    EXPECT_GT(jsonField(stats, "aggregate", "hits"),
              hits_after_first);
    EXPECT_GE(jsonField(stats, "layer", "hits"), 1u);
    EXPECT_EQ(jsonField(stats, "result_cache", "misses"), 2u);
}

// ---------------------------------------------------------------- //
//              Exact stage-counter accounting (/stats)             //
// ---------------------------------------------------------------- //

TEST(Serve, StatsPinStageCountersAfterShapeDedupSequence)
{
    TestServer server;
    const std::uint16_t port = server.port();
    const std::string dsl = repeatedShapeNetwork(3);

    // 3 identical-shape layers under one dataflow: one layer-cache
    // miss computes the stages once; the two clones hit the layer
    // cache without touching the inner stages.
    ASSERT_EQ(
        oneShot(port, postRequest("/analyze?dataflow=C-P", dsl))
            .status,
        200);
    std::string stats = oneShot(port, getRequest("/stats")).body;
    EXPECT_EQ(jsonField(stats, "pipeline", "evaluations"), 3u);
    EXPECT_EQ(jsonField(stats, "layer", "misses"), 1u);
    EXPECT_EQ(jsonField(stats, "layer", "hits"), 2u);
    EXPECT_EQ(jsonField(stats, "tensor", "misses"), 1u);
    EXPECT_EQ(jsonField(stats, "tensor", "hits"), 0u);
    EXPECT_EQ(jsonField(stats, "binding", "misses"), 1u);
    EXPECT_EQ(jsonField(stats, "flat", "misses"), 1u);
    EXPECT_EQ(jsonField(stats, "aggregate", "hits"), 2u);
    EXPECT_EQ(jsonField(stats, "aggregate", "misses"), 4u);

    // Same shapes under a different dataflow: new layer/binding/flat
    // entries, but the shape-keyed tensor stage hits.
    ASSERT_EQ(
        oneShot(port, postRequest("/analyze?dataflow=X-P", dsl))
            .status,
        200);
    stats = oneShot(port, getRequest("/stats")).body;
    EXPECT_EQ(jsonField(stats, "pipeline", "evaluations"), 6u);
    EXPECT_EQ(jsonField(stats, "layer", "misses"), 2u);
    EXPECT_EQ(jsonField(stats, "layer", "hits"), 4u);
    EXPECT_EQ(jsonField(stats, "tensor", "misses"), 1u);
    EXPECT_EQ(jsonField(stats, "tensor", "hits"), 1u);
    EXPECT_EQ(jsonField(stats, "binding", "misses"), 2u);
    EXPECT_EQ(jsonField(stats, "flat", "misses"), 2u);

    // Request accounting rides along.
    EXPECT_EQ(jsonField(stats, "requests", "analyze"), 2u);
    EXPECT_EQ(jsonField(stats, "queue", "depth"), 0u);
    EXPECT_GE(jsonField(stats, "latency_us", "count"), 2u);

    // The latency histogram names its bucket upper bounds: powers of
    // two from 2 µs, with null for the catch-all bucket.
    EXPECT_NE(stats.find("\"le_us\":[2,4,8,16,"), std::string::npos);
    EXPECT_NE(stats.find(",null]"), std::string::npos);
}

// ---------------------------------------------------------------- //
//              Observability surfaces (/metrics, tracing)           //
// ---------------------------------------------------------------- //

TEST(Serve, MetricsEndpointSpeaksPrometheusText)
{
    TestServer server;
    const std::uint16_t port = server.port();

    // Generate some traffic so counters are nonzero.
    ASSERT_EQ(oneShot(port, postRequest("/analyze?dataflow=C-P",
                                        tinyNetwork(8)))
                  .status,
              200);

    const ClientResponse metrics =
        oneShot(port, getRequest("/metrics"));
    ASSERT_EQ(metrics.status, 200);
    EXPECT_EQ(metrics.headers.at("content-type"),
              "text/plain; version=0.0.4; charset=utf-8");

    const std::string &body = metrics.body;
    EXPECT_NE(body.find(std::string("maestro_build_info{version=\"") +
                        kVersion + "\"} 1"),
              std::string::npos);
    EXPECT_NE(body.find("# TYPE maestro_requests_total counter"),
              std::string::npos);
    EXPECT_NE(body.find("maestro_requests_total{endpoint=\"analyze\"}"
                        " 1"),
              std::string::npos);
    EXPECT_NE(body.find("maestro_responses_total{class=\"2xx\"}"),
              std::string::npos);
    EXPECT_NE(
        body.find("# TYPE maestro_request_latency_us histogram"),
        std::string::npos);
    EXPECT_NE(body.find("maestro_request_latency_us_bucket{le=\"2\"}"),
              std::string::npos);
    EXPECT_NE(body.find("maestro_request_latency_us_bucket{le="
                        "\"+Inf\"}"),
              std::string::npos);
    EXPECT_NE(body.find("maestro_request_latency_us_count"),
              std::string::npos);
    EXPECT_NE(body.find(
                  "maestro_pipeline_cache_misses_total{stage="
                  "\"aggregate\"}"),
              std::string::npos);
    EXPECT_NE(body.find("maestro_pipeline_evaluations_total 1"),
              std::string::npos);
    EXPECT_NE(body.find("maestro_queue_capacity"), std::string::npos);

    // The process-wide registry rides along: the daemon enables
    // timing by default, so stage-miss histograms have samples.
    EXPECT_NE(body.find("maestro_pipeline_stage_miss_us_bucket"),
              std::string::npos);
    EXPECT_NE(body.find("maestro_http_request_us_bucket{endpoint="
                        "\"analyze\""),
              std::string::npos);

    // /metrics requests count themselves (incremented before the
    // render, so the first scrape already shows 1).
    EXPECT_NE(body.find(
                  "maestro_requests_total{endpoint=\"metrics\"} 1"),
              std::string::npos);
    const ClientResponse again =
        oneShot(port, getRequest("/metrics"));
    EXPECT_NE(again.body.find(
                  "maestro_requests_total{endpoint=\"metrics\"} 2"),
              std::string::npos);
}

TEST(Serve, EveryResponseCarriesATraceId)
{
    TestServer server;
    const std::uint16_t port = server.port();

    const ClientResponse first =
        oneShot(port, getRequest("/healthz"));
    ASSERT_EQ(first.status, 200);
    ASSERT_EQ(first.headers.count("x-trace-id"), 1u);
    EXPECT_EQ(first.headers.at("x-trace-id"), "maestro-1");

    const ClientResponse second =
        oneShot(port, getRequest("/healthz"));
    EXPECT_EQ(second.headers.at("x-trace-id"), "maestro-2");

    // A client-sent id is echoed back verbatim.
    const std::string tagged =
        "GET /healthz HTTP/1.1\r\nHost: t\r\n"
        "X-Trace-Id: client-tag-7\r\n\r\n";
    const ClientResponse echoed = oneShot(port, tagged);
    EXPECT_EQ(echoed.headers.at("x-trace-id"), "client-tag-7");
}

TEST(Serve, ResponseBytesIdenticalWithTracingEnabled)
{
    TestServer server;
    const std::uint16_t port = server.port();
    const std::string analyze_raw =
        postRequest("/analyze?dataflow=C-P", tinyNetwork(8));
    const std::string tune_raw =
        postRequest("/tune?objective=edp", tinyNetwork(8));

    const ClientResponse analyze_off = oneShot(port, analyze_raw);
    const ClientResponse tune_off = oneShot(port, tune_raw);
    const ClientResponse health_off =
        oneShot(port, getRequest("/healthz"));
    ASSERT_EQ(analyze_off.status, 200);
    ASSERT_EQ(tune_off.status, 200);

    obs::Tracer::instance().start();
    const ClientResponse analyze_on = oneShot(port, analyze_raw);
    const ClientResponse tune_on = oneShot(port, tune_raw);
    const ClientResponse health_on =
        oneShot(port, getRequest("/healthz"));
    obs::Tracer::instance().stop();
    obs::disableMode(obs::kTiming | obs::kSpans);

    // The span capture must be observable (the server's dispatch
    // path records http.* spans) yet leave every body byte intact.
    EXPECT_GT(obs::Tracer::instance().eventCount(), 0u);
    EXPECT_EQ(analyze_on.status, 200);
    EXPECT_EQ(analyze_on.body, analyze_off.body);
    EXPECT_EQ(tune_on.body, tune_off.body);
    EXPECT_EQ(health_on.body, health_off.body);
}

// ---------------------------------------------------------------- //
//                Concurrent mixed-shape storm (accept)             //
// ---------------------------------------------------------------- //

TEST(Serve, ConcurrentStormBytesMatchSingleThreadedReference)
{
    constexpr int kClients = 8;
    constexpr int kRounds = 3;

    // Reference bodies from the direct, single-threaded handler path.
    std::vector<std::string> dsl;
    std::vector<std::string> expected;
    const QueryParams params{{"dataflow", "C-P"}};
    for (int i = 0; i < kClients; ++i) {
        dsl.push_back(tinyNetwork(4 + 4 * i));
        expected.push_back(referenceAnalyze(dsl.back(), params));
    }

    ServeOptions options;
    options.worker_threads = 4;
    // This test pins PIPELINE stage-cache reuse across rounds; with
    // the result cache on, repeat rounds would short-circuit above
    // the pipeline and the layer-hit assertion below would see 0.
    options.result_cache_entries = 0;
    TestServer server(options);
    const std::uint16_t port = server.port();

    std::mutex mutex;
    std::condition_variable cv;
    int ready = 0;
    bool go = false;
    std::vector<std::string> failures;

    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
        clients.emplace_back([&, i] {
            {
                // Start barrier: all clients fire at once so at
                // least kClients requests are in flight together.
                std::unique_lock<std::mutex> lock(mutex);
                if (++ready == kClients) {
                    go = true;
                    cv.notify_all();
                } else {
                    cv.wait(lock, [&] { return go; });
                }
            }
            const int fd = connectLoopback(port);
            std::string error;
            if (fd < 0) {
                error = "connect failed";
            } else {
                const std::string raw =
                    postRequest("/analyze?dataflow=C-P", dsl[i]);
                for (int round = 0; round < kRounds; ++round) {
                    sendAll(fd, raw);
                    const ClientResponse r = readResponse(fd);
                    if (r.status != 200) {
                        error = "status " +
                                std::to_string(r.status);
                        break;
                    }
                    if (r.body != expected[i]) {
                        error = "body mismatch on client " +
                                std::to_string(i);
                        break;
                    }
                }
                ::close(fd);
            }
            if (!error.empty()) {
                std::lock_guard<std::mutex> lock(mutex);
                failures.push_back(error);
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    EXPECT_TRUE(failures.empty())
        << failures.size() << " client(s) failed: " << failures[0];

    // Every byte served concurrently equalled the single-threaded
    // reference; the warm caches must show up in /stats.
    const std::string stats =
        oneShot(port, getRequest("/stats")).body;
    EXPECT_GE(jsonField(stats, "layer", "hits"),
              static_cast<std::uint64_t>(kClients * (kRounds - 1)));
}

// ---------------------------------------------------------------- //
//                      Backpressure: 503 path                      //
// ---------------------------------------------------------------- //

TEST(Serve, SaturatedQueueAnswers503WithRetryAfter)
{
    ServeOptions options;
    options.worker_threads = 1;
    options.queue_capacity = 1; // one in-flight request, no queue
    options.deadline_ms = 60000; // the deadline is not under test
    TestServer server(options);
    const std::uint16_t port = server.port();

    const std::string raw = postRequest("/analyze", heavyPayload());
    constexpr int kClients = 6;

    std::mutex mutex;
    std::condition_variable cv;
    int ready = 0;
    bool go = false;
    std::vector<ClientResponse> responses(kClients);

    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
        clients.emplace_back([&, i] {
            {
                std::unique_lock<std::mutex> lock(mutex);
                if (++ready == kClients) {
                    go = true;
                    cv.notify_all();
                } else {
                    cv.wait(lock, [&] { return go; });
                }
            }
            responses[i] = oneShot(port, raw);
        });
    }
    for (std::thread &t : clients)
        t.join();

    int ok = 0;
    int rejected = 0;
    for (const ClientResponse &r : responses) {
        if (r.status == 200) {
            ++ok;
        } else if (r.status == 503) {
            ++rejected;
            // Backpressure tells the client when to come back.
            EXPECT_EQ(r.headers.count("retry-after"), 1u);
            EXPECT_NE(r.body.find("\"error\""), std::string::npos);
        } else {
            ADD_FAILURE() << "unexpected status " << r.status;
        }
    }
    EXPECT_GE(ok, 1);
    EXPECT_GE(rejected, 1);

    const std::string stats =
        oneShot(port, getRequest("/stats")).body;
    EXPECT_GE(jsonField(stats, "responses", "rejected_503"),
              static_cast<std::uint64_t>(rejected));
    EXPECT_GE(jsonField(stats, "queue", "rejected"),
              static_cast<std::uint64_t>(rejected));
    EXPECT_EQ(jsonField(stats, "queue", "capacity"), 1u);
}

// ---------------------------------------------------------------- //
//                      Deadline: 408 path                          //
// ---------------------------------------------------------------- //

TEST(Serve, DeadlineExpiryAnswers408ThenRecovers)
{
    ServeOptions options;
    options.worker_threads = 2;
    options.deadline_ms = 1; // far below the heavy payload's cost
    TestServer server(options);
    const std::uint16_t port = server.port();

    const ClientResponse slow =
        oneShot(port, postRequest("/analyze", heavyPayload()));
    EXPECT_EQ(slow.status, 408);
    EXPECT_NE(slow.body.find("\"error\""), std::string::npos);

    // The server keeps serving: a cheap request completes within
    // the same deadline once a worker frees up.
    const std::string quick =
        postRequest("/analyze?dataflow=C-P", tinyNetwork(8));
    bool recovered = false;
    for (int attempt = 0; attempt < 100 && !recovered; ++attempt) {
        const ClientResponse r = oneShot(port, quick);
        if (r.status == 200)
            recovered = true;
        else
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
    }
    EXPECT_TRUE(recovered);

    const std::string stats =
        oneShot(port, getRequest("/stats")).body;
    EXPECT_GE(jsonField(stats, "responses", "deadline_408"), 1u);
}

// ---------------------------------------------------------------- //
//                    Keep-alive and graceful drain                 //
// ---------------------------------------------------------------- //

TEST(Serve, KeepAliveServesSequentialRequestsOnOneConnection)
{
    TestServer server;
    const int fd = connectLoopback(server.port());
    ASSERT_GE(fd, 0);

    sendAll(fd, getRequest("/healthz"));
    EXPECT_EQ(readResponse(fd).status, 200);

    sendAll(fd, postRequest("/analyze?dataflow=C-P", tinyNetwork(8)));
    EXPECT_EQ(readResponse(fd).status, 200);

    // "Connection: close" is honoured: response, then EOF.
    sendAll(fd, getRequest("/healthz", /*keep_alive=*/false));
    EXPECT_EQ(readResponse(fd).status, 200);
    char tmp[1];
    EXPECT_EQ(::recv(fd, tmp, sizeof(tmp), 0), 0);
    ::close(fd);
}

TEST(Serve, GracefulDrainStopsAcceptingAndRunReturns)
{
    auto server = std::make_unique<TestServer>();
    const std::uint16_t port = server->port();
    EXPECT_EQ(oneShot(port, getRequest("/healthz")).status, 200);

    server->stop(); // requestStop() + join: run() must return
    EXPECT_LT(connectLoopback(port), 0);
}

TEST(Serve, HealthzReports503WhileDraining)
{
    ServeOptions options;
    // A generous linger window keeps the already-open keep-alive
    // connection serviceable long enough to probe drain behaviour.
    options.drain_linger_ms = 10000;
    auto server = std::make_unique<TestServer>(options);
    const std::uint16_t port = server->port();

    const int fd = connectLoopback(port);
    ASSERT_GE(fd, 0);
    sendAll(fd, getRequest("/healthz"));
    EXPECT_EQ(readResponse(fd).status, 200);

    server->beginStop();

    // The open connection gets one last request during the linger
    // window; a draining server tells load balancers to back off.
    sendAll(fd, getRequest("/healthz"));
    const ClientResponse draining = readResponse(fd);
    EXPECT_EQ(draining.status, 503);
    EXPECT_EQ(draining.body, healthzJson(/*draining=*/true));
    EXPECT_NE(draining.body.find("\"status\":\"draining\""),
              std::string::npos);
    EXPECT_EQ(draining.headers.count("retry-after"), 1u);
    // Responses during a drain close the connection.
    char tmp[1];
    EXPECT_EQ(::recv(fd, tmp, sizeof(tmp), 0), 0);
    ::close(fd);

    server->stop();
}

// ---------------------------------------------------------------- //
//                  Slow-loris read-deadline hardening              //
// ---------------------------------------------------------------- //

TEST(Serve, SlowLorisSenderGets408AndFreesItsSlot)
{
    ServeOptions options;
    options.deadline_ms = 150;
    options.max_connections = 1; // the loris holds the ONLY slot
    TestServer server(options);
    const std::uint16_t port = server.port();

    // Trickle half a request and stall: the read deadline must fire
    // even though no request ever completes parsing.
    const int fd = connectLoopback(port);
    ASSERT_GE(fd, 0);
    sendAll(fd, "POST /analyze HTTP/1.1\r\nHost: t\r\n");
    const ClientResponse starved = readResponse(fd);
    EXPECT_EQ(starved.status, 408);
    EXPECT_NE(starved.body.find("\"error\""), std::string::npos);
    // The server closes the connection after the 408.
    char tmp[1];
    EXPECT_EQ(::recv(fd, tmp, sizeof(tmp), 0), 0);
    ::close(fd);

    // The connection slot is free again: with max_connections = 1,
    // a healthy client can only get through if the loris released
    // it (reaping runs on the accept loop, so retry briefly — any
    // single probe can race the reap and see "too many connections").
    std::string stats;
    for (int attempt = 0; attempt < 100 && stats.empty(); ++attempt) {
        const ClientResponse r = oneShot(port, getRequest("/stats"));
        if (r.status == 200)
            stats = r.body;
        else
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
    }
    ASSERT_FALSE(stats.empty()) << "slot never freed after the 408";
    EXPECT_GE(jsonField(stats, "responses", "deadline_408"), 1u);
}

// ---------------------------------------------------------------- //
//                     Async job API (tentpole)                     //
// ---------------------------------------------------------------- //

TEST(Serve, JobsLifecycleServesSyncBytesAndWarmsSharedCache)
{
    TestServer server;
    const std::uint16_t port = server.port();
    const std::string dsl = tinyNetwork(8);
    const std::string expected =
        referenceAnalyze(dsl, QueryParams{{"dataflow", "C-P"}});

    // Submit: 202 + a content-addressed id.
    const ClientResponse accepted = oneShot(
        port, postRequest("/jobs/analyze?dataflow=C-P", dsl));
    ASSERT_EQ(accepted.status, 202) << accepted.body;
    EXPECT_NE(accepted.body.find("\"state\":\"queued\""),
              std::string::npos);
    const std::string id = jsonString(accepted.body, "id");
    ASSERT_EQ(id.size(), 17u) << id; // "j" + 16 hex digits

    // Poll to completion: the terminal body is the sync endpoint's
    // response VERBATIM — which equals the direct handler call (the
    // CLI's --format json path) byte for byte.
    const ClientResponse done = waitJob(port, id);
    ASSERT_EQ(done.status, 200) << done.body;
    EXPECT_EQ(done.body, expected);

    // The job warmed the shared result cache: the same request on
    // the SYNC endpoint is now a cache hit with identical bytes.
    const ClientResponse sync = oneShot(
        port, postRequest("/analyze?dataflow=C-P", dsl));
    ASSERT_EQ(sync.status, 200);
    EXPECT_EQ(sync.body, expected);
    EXPECT_EQ(sync.headers.at("x-result-cache"), "hit");

    // Identical resubmission is idempotent: 200 (not 202), the same
    // id, no second evaluation.
    const ClientResponse again = oneShot(
        port, postRequest("/jobs/analyze?dataflow=C-P", dsl));
    EXPECT_EQ(again.status, 200);
    EXPECT_EQ(jsonString(again.body, "id"), id);

    // GET /jobs lists the resident job; /stats carries the story.
    const ClientResponse list = oneShot(port, getRequest("/jobs"));
    EXPECT_EQ(list.status, 200);
    EXPECT_NE(list.body.find("\"id\":\"" + id + "\""),
              std::string::npos);
    const std::string stats =
        oneShot(port, getRequest("/stats")).body;
    EXPECT_EQ(jsonField(stats, "jobs", "submitted"), 1u);
    EXPECT_EQ(jsonField(stats, "jobs", "resubmitted"), 1u);
    EXPECT_EQ(jsonField(stats, "jobs", "completed"), 1u);
    EXPECT_GE(jsonField(stats, "result_cache", "hits"), 1u);

    // DELETE removes the terminal job; the id then 404s.
    EXPECT_EQ(oneShot(port, "DELETE /jobs/" + id +
                                " HTTP/1.1\r\nHost: t\r\n\r\n")
                  .status,
              200);
    EXPECT_EQ(oneShot(port, getRequest("/jobs/" + id)).status, 404);
}

TEST(Serve, JobsMatchSyncBytesForEveryEndpoint)
{
    TestServer server;
    const std::uint16_t port = server.port();
    const std::string dsl = tinyNetwork(6);
    const std::vector<std::string> targets = {
        "/dse?dataflow=C-P",
        "/tune?objective=edp",
        "/simulate?dataflow=C-P",
    };
    for (const std::string &t : targets) {
        const ClientResponse sync =
            oneShot(port, postRequest(t, dsl));
        ASSERT_EQ(sync.status, 200) << t << " " << sync.body;
        const ClientResponse accepted =
            oneShot(port, postRequest("/jobs" + t, dsl));
        ASSERT_EQ(accepted.status, 202) << t << " " << accepted.body;
        const ClientResponse done =
            waitJob(port, jsonString(accepted.body, "id"));
        ASSERT_EQ(done.status, 200) << t << " " << done.body;
        EXPECT_EQ(done.body, sync.body) << t;
    }
}

TEST(Serve, JobsRoutingErrorsAndFailedJob)
{
    TestServer server;
    const std::uint16_t port = server.port();

    // Unknown job endpoint and unknown id.
    const ClientResponse bad_ep =
        oneShot(port, postRequest("/jobs/nope", "x"));
    EXPECT_EQ(bad_ep.status, 404);
    EXPECT_NE(bad_ep.body.find("analyze|dse|tune|simulate|crossval"),
              std::string::npos);
    EXPECT_EQ(oneShot(port, getRequest("/jobs/jdeadbeef")).status,
              404);
    EXPECT_EQ(oneShot(port, postRequest("/jobs", "x")).status, 405);

    // A failing request fails the JOB, preserving the sync error
    // status and body on poll.
    const ClientResponse accepted =
        oneShot(port, postRequest("/jobs/analyze", "Nonsense ("));
    ASSERT_EQ(accepted.status, 202);
    const std::string id = jsonString(accepted.body, "id");
    const ClientResponse failed = waitJob(port, id);
    EXPECT_EQ(failed.status, 400);
    EXPECT_NE(failed.body.find("\"error\""), std::string::npos);
    const std::string stats =
        oneShot(port, getRequest("/stats")).body;
    EXPECT_EQ(jsonField(stats, "jobs", "failed"), 1u);
}

TEST(Serve, CrossvalEndpointSyncAndAsyncMatchDirectHandler)
{
    // The randomized sweep is seeded and thread-invariant, so the
    // server body must equal the direct handler call byte for byte
    // at any worker count — sync and via the job API.
    const QueryParams params{{"seed", "3"}, {"triples", "4"}};
    const std::string expected = crossvalRunJson(params, 1);

    TestServer server;
    const std::uint16_t port = server.port();
    const ClientResponse sync = oneShot(
        port, postRequest("/crossval?seed=3&triples=4", ""));
    ASSERT_EQ(sync.status, 200) << sync.body;
    EXPECT_EQ(sync.body, expected);

    const ClientResponse accepted = oneShot(
        port, postRequest("/jobs/crossval?seed=3&triples=4", ""));
    ASSERT_EQ(accepted.status, 202) << accepted.body;
    const ClientResponse done =
        waitJob(port, jsonString(accepted.body, "id"));
    ASSERT_EQ(done.status, 200) << done.body;
    EXPECT_EQ(done.body, expected);

    // Bad parameters surface as a 400, sync path.
    EXPECT_EQ(oneShot(port, postRequest("/crossval?triples=0", ""))
                  .status,
              400);
}

// ---------------------------------------------------------------- //
//                Per-client sync budgets (429 path)                //
// ---------------------------------------------------------------- //

TEST(Serve, PerClientSyncBudgetAnswers429)
{
    ServeOptions options;
    options.worker_threads = 1;
    options.queue_capacity = 8; // global bound NOT under test
    options.client_share = 1;   // one in-flight request per client
    options.deadline_ms = 60000;
    TestServer server(options);
    const std::uint16_t port = server.port();

    // A slow request from client "alice" occupies her only slot.
    const std::string slow_raw =
        postRequest("/simulate?dataflow=C-P&exact=on", midNetwork(),
                    "X-Client-Id: alice");
    std::thread first([&] {
        const ClientResponse r = oneShot(port, slow_raw);
        EXPECT_EQ(r.status, 200) << r.body;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));

    // Her second request is over budget: 429, not 503 — the global
    // queue still has room for other tenants.
    const ClientResponse over = oneShot(port, slow_raw);
    first.join();
    if (over.status == 429) {
        EXPECT_NE(over.body.find("alice"), std::string::npos);
        ASSERT_EQ(over.headers.count("retry-after"), 1u);
        EXPECT_EQ(over.headers.at("retry-after"), "1");
        const std::string stats =
            oneShot(port, getRequest("/stats")).body;
        EXPECT_GE(jsonField(stats, "responses", "throttled_429"),
                  1u);
        EXPECT_GE(jsonField(stats, "queue", "rejected_client"), 1u);
    } else {
        // The first evaluation can (rarely) finish within the
        // stagger on a loaded machine; then the repeat is a result
        // cache hit — also correct, just not the path under test.
        EXPECT_EQ(over.status, 200);
        EXPECT_EQ(over.headers.at("x-result-cache"), "hit");
    }
}

// ---------------------------------------------------------------- //
//           Fleet observability (shared metrics segment)           //
// ---------------------------------------------------------------- //

/** A unique throwaway path for access-log tests. */
std::string
tempLogPath(const char *tag)
{
    const char *base = ::getenv("TMPDIR");
    std::string path = base ? base : "/tmp";
    path += "/maestro_serve_";
    path += tag;
    path += "_";
    path += std::to_string(::getpid());
    path += ".jsonl";
    std::remove(path.c_str());
    return path;
}

TEST(ServeFleet, LaneSumsMatchASingleServerAndEveryWorkerAgrees)
{
    // Two servers sharing one 2-lane segment: the in-process
    // analogue of the `--workers 2` forked fleet (same pre-fork
    // registration, same per-lane counting, same render path).
    auto segment = obs::SharedMetrics::create(2);
    ServeOptions lane0;
    lane0.shared_metrics = segment;
    lane0.worker_lane = 0;
    ServeOptions lane1;
    lane1.shared_metrics = segment;
    lane1.worker_lane = 1;
    TestServer w0(lane0);
    TestServer w1(lane1);
    TestServer single; // reference: the same traffic, one process

    const std::string raw =
        postRequest("/analyze?dataflow=C-P", tinyNetwork(8));
    const ClientResponse a = oneShot(w0.port(), raw);
    const ClientResponse b = oneShot(w0.port(), raw);
    const ClientResponse c = oneShot(w1.port(), raw);
    ASSERT_EQ(a.status, 200);
    ASSERT_EQ(b.status, 200);
    ASSERT_EQ(c.status, 200);
    // Landing on a different lane never changes the bytes.
    EXPECT_EQ(a.body, c.body);
    EXPECT_EQ(oneShot(w1.port(), getRequest("/healthz")).status, 200);

    for (int i = 0; i < 3; ++i)
        ASSERT_EQ(oneShot(single.port(), raw).status, 200);
    EXPECT_EQ(oneShot(single.port(), getRequest("/healthz")).status,
              200);

    // Any worker renders the whole fleet: per-lane samples plus the
    // worker="all" sum, which equals the single-server total.
    const std::string fleet0 =
        oneShot(w0.port(), getRequest("/metrics")).body;
    const std::string fleet1 =
        oneShot(w1.port(), getRequest("/metrics")).body;
    const std::string ref =
        oneShot(single.port(), getRequest("/metrics")).body;
    EXPECT_NE(
        ref.find("maestro_requests_total{endpoint=\"analyze\"} 3"),
        std::string::npos);
    for (const std::string *body : {&fleet0, &fleet1}) {
        EXPECT_NE(body->find("maestro_requests_total{endpoint="
                             "\"analyze\",worker=\"0\"} 2"),
                  std::string::npos);
        EXPECT_NE(body->find("maestro_requests_total{endpoint="
                             "\"analyze\",worker=\"1\"} 1"),
                  std::string::npos);
        EXPECT_NE(body->find("maestro_requests_total{endpoint="
                             "\"analyze\",worker=\"all\"} 3"),
                  std::string::npos);
        EXPECT_NE(body->find("maestro_requests_total{endpoint="
                             "\"healthz\",worker=\"1\"} 1"),
                  std::string::npos);
        EXPECT_NE(body->find("maestro_request_latency_us_count{"
                             "worker=\"all\"}"),
                  std::string::npos);
    }

    // GET /stats gains a fleet object with per-worker breakdown.
    const std::string stats =
        oneShot(w0.port(), getRequest("/stats")).body;
    EXPECT_NE(stats.find("\"fleet\":{\"workers\":2,\"lane\":0,"),
              std::string::npos);
    EXPECT_NE(stats.find("\"per_worker\":["), std::string::npos);
}

TEST(ServeFleet, CacheOutcomeAndClientSeriesWithCardinalityCap)
{
    ServeOptions options;
    options.metrics_max_clients = 1; // carol takes the only slot
    TestServer server(options);
    const std::uint16_t port = server.port();

    const std::string raw = postRequest(
        "/analyze?dataflow=C-P", tinyNetwork(8), "X-Client-Id: carol");
    const ClientResponse miss = oneShot(port, raw);
    const ClientResponse hit = oneShot(port, raw);
    ASSERT_EQ(miss.status, 200);
    ASSERT_EQ(hit.status, 200);
    EXPECT_EQ(hit.headers.at("x-result-cache"), "hit");
    EXPECT_EQ(hit.body, miss.body);

    // A second client folds into client="other" past the cap; the
    // shared result cache still answers it with the same bytes.
    const ClientResponse folded = oneShot(
        port, postRequest("/analyze?dataflow=C-P", tinyNetwork(8),
                          "X-Client-Id: dave"));
    ASSERT_EQ(folded.status, 200);
    EXPECT_EQ(folded.headers.at("x-result-cache"), "hit");

    // Scrape as carol: a client-less request keys on the peer IP,
    // which would be a second over-cap client muddying the counts.
    const std::string body =
        oneShot(port, "GET /metrics HTTP/1.1\r\nHost: t\r\n"
                      "X-Client-Id: carol\r\n\r\n")
            .body;
    EXPECT_NE(body.find("maestro_endpoint_latency_us_count{cache="
                        "\"miss\",endpoint=\"analyze\"} 1"),
              std::string::npos);
    EXPECT_NE(body.find("maestro_endpoint_latency_us_count{cache="
                        "\"hit\",endpoint=\"analyze\"} 2"),
              std::string::npos);
    EXPECT_NE(
        body.find("maestro_client_requests_total{client=\"carol\"}"
                  " 3"),
        std::string::npos);
    EXPECT_NE(
        body.find("maestro_client_requests_total{client=\"other\"}"
                  " 1"),
        std::string::npos);
    EXPECT_NE(body.find("maestro_client_cache_hits_total{client="
                        "\"carol\"} 1"),
              std::string::npos);
    EXPECT_EQ(body.find("client=\"dave\""), std::string::npos);
}

TEST(ServeFleet, ThrottledJobSubmitsPinRetryAfterOne)
{
    ServeOptions options;
    options.worker_threads = 1;
    options.jobs_per_client = 1;
    options.deadline_ms = 60000;
    TestServer server(options);
    const std::uint16_t port = server.port();

    // A slow sync request holds the only pool thread, so alice's
    // first job stays queued while her second submit arrives.
    const std::string slow_raw =
        postRequest("/simulate?dataflow=C-P&exact=on", midNetwork(),
                    "X-Client-Id: bob");
    std::thread busy([&] {
        EXPECT_EQ(oneShot(port, slow_raw).status, 200);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));

    const ClientResponse first = oneShot(
        port, postRequest("/jobs/analyze?dataflow=C-P",
                          tinyNetwork(3), "X-Client-Id: alice"));
    const ClientResponse second = oneShot(
        port, postRequest("/jobs/analyze?dataflow=C-P",
                          tinyNetwork(4), "X-Client-Id: alice"));
    busy.join();
    if (second.status == 429) {
        ASSERT_EQ(second.headers.count("retry-after"), 1u);
        EXPECT_EQ(second.headers.at("retry-after"), "1");
        const std::string body =
            oneShot(port, getRequest("/metrics")).body;
        EXPECT_NE(body.find("maestro_jobs_total{event="
                            "\"rejected_client\"} 1"),
                  std::string::npos);
        EXPECT_NE(body.find("maestro_client_throttled_total{client="
                            "\"alice\"} 1"),
                  std::string::npos);
    } else {
        // The slow request can (rarely) finish inside the stagger;
        // then both submits fit the budget — not the path under
        // test, but still correct behaviour.
        EXPECT_EQ(first.status, 202);
    }
}

TEST(ServeFleet, JobRepliesEchoTheSubmitTraceInHeadersOnly)
{
    TestServer server;
    const std::uint16_t port = server.port();
    const std::string dsl = tinyNetwork(8);
    const std::string expected =
        referenceAnalyze(dsl, QueryParams{{"dataflow", "C-P"}});

    const ClientResponse accepted = oneShot(
        port, postRequest("/jobs/analyze?dataflow=C-P", dsl,
                          "X-Trace-Id: span-41"));
    ASSERT_EQ(accepted.status, 202) << accepted.body;
    EXPECT_EQ(accepted.headers.at("x-trace-id"), "span-41");
    EXPECT_EQ(accepted.headers.at("x-job-trace-id"), "span-41");
    // Bodies never carry the trace (byte-identity).
    EXPECT_EQ(accepted.body.find("span-41"), std::string::npos);

    // A poll from another client has its own trace id, but the
    // submitter's id rides along in X-Job-Trace-Id, and the terminal
    // body is still the sync endpoint's bytes verbatim.
    const std::string id = jsonString(accepted.body, "id");
    const ClientResponse done = waitJob(port, id);
    ASSERT_EQ(done.status, 200) << done.body;
    EXPECT_EQ(done.headers.at("x-job-trace-id"), "span-41");
    EXPECT_NE(done.headers.at("x-trace-id"), "span-41");
    EXPECT_EQ(done.body, expected);

    // Idempotent resubmits keep the FIRST submitter's trace.
    const ClientResponse again = oneShot(
        port, postRequest("/jobs/analyze?dataflow=C-P", dsl,
                          "X-Trace-Id: span-99"));
    EXPECT_EQ(again.status, 200);
    EXPECT_EQ(again.headers.at("x-trace-id"), "span-99");
    EXPECT_EQ(again.headers.at("x-job-trace-id"), "span-41");
}

TEST(ServeFleet, EventLogAndEventsTailShareTheRequestStory)
{
    const std::string path = tempLogPath("events");
    ServeOptions options;
    options.access_log = path;
    options.events_ring = 8;
    TestServer server(options);
    const std::uint16_t port = server.port();

    ASSERT_EQ(oneShot(port, getRequest("/healthz")).status, 200);
    const ClientResponse analyzed = oneShot(
        port, postRequest("/analyze?dataflow=C-P", tinyNetwork(8),
                          "X-Client-Id: erin"));
    ASSERT_EQ(analyzed.status, 200);
    const std::string trace = analyzed.headers.at("x-trace-id");

    // The ring tail renders oldest-first with the fields the file
    // carries: type, endpoint, client, and the response's trace id.
    const ClientResponse tail =
        oneShot(port, getRequest("/events?n=8"));
    ASSERT_EQ(tail.status, 200);
    EXPECT_EQ(tail.body.rfind("{\"count\":", 0), 0u) << tail.body;
    EXPECT_NE(tail.body.find("\"type\":\"request\""),
              std::string::npos);
    EXPECT_NE(tail.body.find("\"endpoint\":\"analyze\""),
              std::string::npos);
    EXPECT_NE(tail.body.find("\"client\":\"erin\""),
              std::string::npos);
    EXPECT_NE(tail.body.find("\"trace\":\"" + trace + "\""),
              std::string::npos);
    EXPECT_EQ(oneShot(port, getRequest("/events?n=bogus")).status,
              400);

    // /stats surfaces the log's counters.
    const std::string stats =
        oneShot(port, getRequest("/stats")).body;
    EXPECT_GE(jsonField(stats, "events", "lines"), 3u);

    // Stop to quiesce writers, then audit the file: every line is
    // one whole JSON object, and the analyze completion is there
    // with its trace id.
    server.stop();
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::string line;
    std::size_t lines = 0;
    bool saw_analyze = false;
    while (std::getline(in, line)) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{') << line;
        EXPECT_EQ(line.back(), '}') << line;
        ++lines;
        if (line.find("\"endpoint\":\"analyze\"") !=
                std::string::npos &&
            line.find("\"trace\":\"" + trace + "\"") !=
                std::string::npos)
            saw_analyze = true;
    }
    EXPECT_GE(lines, 3u);
    EXPECT_TRUE(saw_analyze);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------- //
//                  Admission/histogram primitives                  //
// ---------------------------------------------------------------- //

TEST(ServeAdmission, BoundsInFlightAndCountsRejections)
{
    AdmissionController admission(2);
    EXPECT_EQ(admission.capacity(), 2u);
    EXPECT_TRUE(admission.tryAdmit());
    EXPECT_TRUE(admission.tryAdmit());
    EXPECT_FALSE(admission.tryAdmit()); // full
    EXPECT_EQ(admission.depth(), 2u);
    EXPECT_EQ(admission.rejected(), 1u);
    admission.release();
    EXPECT_TRUE(admission.tryAdmit());
    EXPECT_EQ(admission.peakDepth(), 2u);
    admission.release();
    admission.release();
    EXPECT_EQ(admission.depth(), 0u);

    AdmissionController degenerate(0); // clamped to 1
    EXPECT_EQ(degenerate.capacity(), 1u);
}

TEST(ServeAdmission, ConcurrentAdmitNeverExceedsCapacity)
{
    constexpr std::size_t kCapacity = 4;
    AdmissionController admission(kCapacity);
    std::atomic<std::size_t> peak{0};
    std::atomic<std::size_t> inside{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 2000; ++i) {
                if (!admission.tryAdmit())
                    continue;
                const std::size_t now =
                    inside.fetch_add(1) + 1;
                std::size_t p = peak.load();
                while (now > p &&
                       !peak.compare_exchange_weak(p, now)) {
                }
                inside.fetch_sub(1);
                admission.release();
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_LE(peak.load(), kCapacity);
    EXPECT_LE(admission.peakDepth(), kCapacity);
    EXPECT_EQ(admission.depth(), 0u);
}

TEST(ServeLatencyHistogram, BucketsAndSummary)
{
    LatencyHistogram h;
    h.record(0);    // bucket 0
    h.record(1);    // bucket 0: [1, 2)
    h.record(2);    // bucket 1: [2, 4)
    h.record(1023); // bucket 9: [512, 1024)
    h.record(std::uint64_t{1} << 40); // clamped to the last bucket
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.bucket(LatencyHistogram::kBuckets - 1), 1u);
    EXPECT_EQ(h.maxMicros(), std::uint64_t{1} << 40);
    EXPECT_EQ(h.totalMicros(),
              0u + 1 + 2 + 1023 + (std::uint64_t{1} << 40));
}

TEST(ServeCounters, StatusClassification)
{
    RequestCounters c;
    c.countStatus(200);
    c.countStatus(400);
    c.countStatus(404);
    c.countStatus(408);
    c.countStatus(500);
    c.countStatus(503);
    EXPECT_EQ(c.ok_2xx.load(), 1u);
    EXPECT_EQ(c.client_err_4xx.load(), 3u);
    EXPECT_EQ(c.server_err_5xx.load(), 2u);
    EXPECT_EQ(c.deadline_408.load(), 1u);
    EXPECT_EQ(c.rejected_503.load(), 1u);
}

} // namespace
} // namespace serve
} // namespace maestro
