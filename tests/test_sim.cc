/**
 * @file
 * Unit tests for the reference cycle-level simulator: MAC
 * conservation, utilization, traffic bounds, and cross-validation
 * against the analytical engines on small layers (the test-suite
 * version of the Fig. 9 experiment).
 */

#include <cmath>
#include <gtest/gtest.h>

#include "src/common/error.hh"
#include "src/core/analyzer.hh"
#include "src/dataflows/catalog.hh"
#include "src/sim/reference_sim.hh"

namespace maestro
{
namespace
{

Layer
conv(Count k, Count c, Count hw, Count rs, Count stride = 1,
     Count pad = 0)
{
    DimMap<Count> d;
    d[Dim::N] = 1;
    d[Dim::K] = k;
    d[Dim::C] = c;
    d[Dim::Y] = hw;
    d[Dim::X] = hw;
    d[Dim::R] = rs;
    d[Dim::S] = rs;
    Layer l("test", OpType::Conv2D, d);
    l.stride(stride).padding(pad);
    return l;
}

AcceleratorConfig
smallConfig()
{
    AcceleratorConfig cfg = AcceleratorConfig::paperStudy();
    cfg.num_pes = 32;
    cfg.noc = NocModel(8.0, 1.0);
    cfg.offchip = NocModel(4.0, 4.0);
    return cfg;
}

TEST(Sim, MacsConservedExactly)
{
    const Layer layer = conv(8, 8, 12, 3, 1, 1);
    const AcceleratorConfig cfg = smallConfig();
    for (const Dataflow &df : dataflows::table3()) {
        const SimResult sim = simulateLayer(layer, df, cfg);
        EXPECT_NEAR(sim.macs, layer.totalMacs(),
                    0.02 * layer.totalMacs())
            << df.name();
    }
}

TEST(Sim, MacsConservedWithStride)
{
    const Layer layer = conv(16, 3, 33, 5, 2, 0);
    const AcceleratorConfig cfg = smallConfig();
    for (const char *name : {"X-P", "KC-P", "YR-P"}) {
        const SimResult sim =
            simulateLayer(layer, dataflows::byName(name), cfg);
        EXPECT_NEAR(sim.macs, layer.totalMacs(),
                    0.05 * layer.totalMacs())
            << name;
    }
}

TEST(Sim, CyclesAtLeastComputeOverActive)
{
    const Layer layer = conv(8, 8, 12, 3, 1, 1);
    const AcceleratorConfig cfg = smallConfig();
    for (const Dataflow &df : dataflows::table3()) {
        const SimResult sim = simulateLayer(layer, df, cfg);
        EXPECT_GE(sim.cycles * sim.avg_active_pes, sim.macs * 0.95)
            << df.name();
        EXPECT_LE(sim.avg_active_pes,
                  static_cast<double>(cfg.num_pes) + 1e-9)
            << df.name();
    }
}

TEST(Sim, WeightSupplyAtLeastTensorOnce)
{
    const Layer layer = conv(8, 8, 12, 3, 1, 1);
    const AcceleratorConfig cfg = smallConfig();
    for (const Dataflow &df : dataflows::table3()) {
        const SimResult sim = simulateLayer(layer, df, cfg);
        EXPECT_GE(sim.l2_supply[TensorKind::Weight],
                  static_cast<double>(
                      layer.tensorVolume(TensorKind::Weight)) *
                      0.99)
            << df.name();
    }
}

TEST(Sim, GuardRejectsHugeNests)
{
    const Layer layer = conv(512, 512, 224, 3, 1, 1);
    SimOptions options;
    options.max_steps = 1000;
    EXPECT_THROW(simulateLayer(layer, dataflows::cPartitioned(),
                               smallConfig(), options),
                 Error);
}

/**
 * Cross-validation property: the analytical runtime stays within 15%
 * of the simulator across a sweep of layers and dataflows (the paper
 * reports 3.9% average against RTL; individual layers vary more).
 */
struct ValidationCase
{
    const char *dataflow;
    Count k, c, hw, rs, stride, pad;
    Count pes = 32;
};

class SimCrossValidation
    : public ::testing::TestWithParam<ValidationCase>
{
};

TEST_P(SimCrossValidation, AnalyticalMatchesSimulator)
{
    const ValidationCase &vc = GetParam();
    const Layer layer =
        conv(vc.k, vc.c, vc.hw, vc.rs, vc.stride, vc.pad);
    const Dataflow df = dataflows::byName(vc.dataflow);
    AcceleratorConfig cfg = smallConfig();
    cfg.num_pes = vc.pes;

    const LayerAnalysis la = Analyzer(cfg).analyzeLayer(layer, df);
    const SimResult sim = simulateLayer(layer, df, cfg);
    const double err =
        std::abs(la.runtime - sim.cycles) / sim.cycles;
    EXPECT_LT(err, 0.15)
        << vc.dataflow << " k" << vc.k << " c" << vc.c << " hw"
        << vc.hw << ": analytical " << la.runtime << " vs sim "
        << sim.cycles;
}

INSTANTIATE_TEST_SUITE_P(
    LayerSweep, SimCrossValidation,
    ::testing::Values(
        ValidationCase{"C-P", 8, 8, 12, 3, 1, 1},
        ValidationCase{"C-P", 16, 32, 14, 3, 1, 1},
        ValidationCase{"X-P", 8, 8, 12, 3, 1, 1},
        ValidationCase{"X-P", 16, 3, 32, 3, 1, 1},
        ValidationCase{"X-P", 8, 8, 21, 5, 2, 0},
        ValidationCase{"YX-P", 8, 8, 24, 3, 1, 1},
        ValidationCase{"YX-P", 16, 16, 32, 3, 1, 1},
        ValidationCase{"YR-P", 8, 8, 16, 3, 1, 1},
        ValidationCase{"YR-P", 16, 16, 28, 3, 1, 1},
        ValidationCase{"YR-P", 8, 3, 33, 5, 2, 0},
        ValidationCase{"KC-P", 64, 64, 14, 3, 1, 1, 64},
        ValidationCase{"KC-P", 32, 16, 28, 3, 1, 1, 64},
        ValidationCase{"KC-P", 16, 3, 32, 3, 1, 1, 64}),
    [](const ::testing::TestParamInfo<ValidationCase> &info) {
        const ValidationCase &vc = info.param;
        std::string name = vc.dataflow;
        for (char &ch : name) {
            if (ch == '-')
                ch = '_';
        }
        return name + "_k" + std::to_string(vc.k) + "_c" +
               std::to_string(vc.c) + "_hw" + std::to_string(vc.hw) +
               "_rs" + std::to_string(vc.rs) + "_s" +
               std::to_string(vc.stride);
    });

} // namespace
} // namespace maestro
