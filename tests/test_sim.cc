/**
 * @file
 * Unit tests for the reference cycle-level simulator: MAC
 * conservation, utilization, traffic bounds, and cross-validation
 * against the analytical engines on small layers (the test-suite
 * version of the Fig. 9 experiment).
 */

#include <cmath>
#include <gtest/gtest.h>

#include "src/common/error.hh"
#include "src/core/analyzer.hh"
#include "src/dataflows/catalog.hh"
#include "src/sim/crossval.hh"
#include "src/sim/reference_sim.hh"

namespace maestro
{
namespace
{

Layer
conv(Count k, Count c, Count hw, Count rs, Count stride = 1,
     Count pad = 0)
{
    DimMap<Count> d;
    d[Dim::N] = 1;
    d[Dim::K] = k;
    d[Dim::C] = c;
    d[Dim::Y] = hw;
    d[Dim::X] = hw;
    d[Dim::R] = rs;
    d[Dim::S] = rs;
    Layer l("test", OpType::Conv2D, d);
    l.stride(stride).padding(pad);
    return l;
}

AcceleratorConfig
smallConfig()
{
    AcceleratorConfig cfg = AcceleratorConfig::paperStudy();
    cfg.num_pes = 32;
    cfg.noc = NocModel(8.0, 1.0);
    cfg.offchip = NocModel(4.0, 4.0);
    return cfg;
}

TEST(Sim, MacsConservedExactly)
{
    const Layer layer = conv(8, 8, 12, 3, 1, 1);
    const AcceleratorConfig cfg = smallConfig();
    for (const Dataflow &df : dataflows::table3()) {
        const SimResult sim = simulateLayer(layer, df, cfg);
        EXPECT_NEAR(sim.macs, layer.totalMacs(),
                    0.02 * layer.totalMacs())
            << df.name();
    }
}

TEST(Sim, MacsConservedWithStride)
{
    const Layer layer = conv(16, 3, 33, 5, 2, 0);
    const AcceleratorConfig cfg = smallConfig();
    for (const char *name : {"X-P", "KC-P", "YR-P"}) {
        const SimResult sim =
            simulateLayer(layer, dataflows::byName(name), cfg);
        EXPECT_NEAR(sim.macs, layer.totalMacs(),
                    0.05 * layer.totalMacs())
            << name;
    }
}

TEST(Sim, CyclesAtLeastComputeOverActive)
{
    const Layer layer = conv(8, 8, 12, 3, 1, 1);
    const AcceleratorConfig cfg = smallConfig();
    for (const Dataflow &df : dataflows::table3()) {
        const SimResult sim = simulateLayer(layer, df, cfg);
        EXPECT_GE(sim.cycles * sim.avg_active_pes, sim.macs * 0.95)
            << df.name();
        EXPECT_LE(sim.avg_active_pes,
                  static_cast<double>(cfg.num_pes) + 1e-9)
            << df.name();
    }
}

TEST(Sim, WeightSupplyAtLeastTensorOnce)
{
    const Layer layer = conv(8, 8, 12, 3, 1, 1);
    const AcceleratorConfig cfg = smallConfig();
    for (const Dataflow &df : dataflows::table3()) {
        const SimResult sim = simulateLayer(layer, df, cfg);
        EXPECT_GE(sim.l2_supply[TensorKind::Weight],
                  static_cast<double>(
                      layer.tensorVolume(TensorKind::Weight)) *
                      0.99)
            << df.name();
    }
}

TEST(Sim, GuardRejectsHugeNestsOnExactPath)
{
    const Layer layer = conv(512, 512, 224, 3, 1, 1);
    SimOptions options;
    options.exact = true;
    options.max_steps = 1000;
    EXPECT_THROW(simulateLayer(layer, dataflows::cPartitioned(),
                               smallConfig(), options),
                 Error);
}

TEST(Sim, ExactGuardBoundaryIsInclusive)
{
    // The guard must reject strictly-greater step counts and accept
    // a budget exactly equal to the nest size.
    const Layer layer = conv(8, 8, 12, 3, 1, 1);
    const Dataflow df = dataflows::cPartitioned();
    SimOptions probe;
    const SimResult sized = simulateLayer(layer, df, smallConfig(), probe);

    SimOptions options;
    options.exact = true;
    options.max_steps = sized.steps;
    EXPECT_NO_THROW(simulateLayer(layer, df, smallConfig(), options));
    options.max_steps = sized.steps - 1.0;
    EXPECT_THROW(simulateLayer(layer, df, smallConfig(), options),
                 Error);
}

TEST(Sim, FastGuardBoundsStepClassesNotSteps)
{
    // The periodic path accepts a nest whose raw step count is far
    // beyond the budget (that's its purpose) but applies the same
    // guard semantics to its own unit of work, the step classes.
    const Layer layer = conv(512, 512, 224, 3, 1, 1);
    const Dataflow df = dataflows::cPartitioned();
    SimOptions options;
    options.max_steps = 100000;
    SimResult fast;
    ASSERT_NO_THROW(
        fast = simulateLayer(layer, df, smallConfig(), options));
    EXPECT_GT(fast.steps, options.max_steps);
    EXPECT_LE(fast.step_classes, options.max_steps);

    options.max_steps = fast.step_classes;
    EXPECT_NO_THROW(simulateLayer(layer, df, smallConfig(), options));
    options.max_steps = fast.step_classes - 1.0;
    EXPECT_THROW(simulateLayer(layer, df, smallConfig(), options),
                 Error);
}

/**
 * Satellite properties over a seeded randomized sweep: exact MAC
 * conservation, DRAM fill lower-bounded by the tensor volume it must
 * at least deliver, and cycles lower-bounded by every modeled
 * resource's busy time.
 */
TEST(Sim, RandomizedInvariants)
{
    int checked = 0;
    for (std::uint64_t i = 0; i < 120 && checked < 48; ++i) {
        const crossval::TripleSpec spec =
            crossval::sampleTriple(1234, i);
        const Layer layer = spec.layer();
        SimResult sim;
        try {
            sim = simulateLayer(layer,
                                dataflows::byName(spec.dataflow),
                                spec.config());
        } catch (const Error &) {
            continue; // unbindable sample
        }
        ++checked;
        const std::string what = spec.describe();

        // MACs match the algorithmic count exactly (the schedule
        // covers the whole output space, once).
        const double alg =
            static_cast<double>(layer.totalMacs());
        EXPECT_NEAR(sim.macs, alg, 1e-6 * alg) << what;

        // DRAM must deliver every element the schedule consumes at
        // least once: all weights always; all inputs at stride 1
        // (a strided schedule legitimately skips input elements).
        const double w_volume =
            static_cast<double>(
                layer.tensorVolume(TensorKind::Weight)) *
            layer.weightDensityVal();
        EXPECT_GE(sim.dram_fill[TensorKind::Weight],
                  w_volume * (1.0 - 1e-9))
            << what;
        if (spec.stride == 1) {
            const double i_volume =
                static_cast<double>(
                    layer.tensorVolume(TensorKind::Input)) *
                layer.inputDensityVal();
            EXPECT_GE(sim.dram_fill[TensorKind::Input],
                      i_volume * (1.0 - 1e-9))
                << what;
        }

        // Runtime is bounded below by each resource's busy time.
        // Ingress and egress are separate overlapped NoC channels, so
        // the combined noc_busy may reach twice the runtime but each
        // direction alone never exceeds it.
        EXPECT_GE(sim.cycles, sim.compute_cycles * (1.0 - 1e-9))
            << what;
        EXPECT_GE(sim.cycles, 0.5 * sim.noc_busy * (1.0 - 1e-9))
            << what;
        EXPECT_GE(sim.cycles, sim.dram_busy * (1.0 - 1e-9)) << what;
    }
    EXPECT_GE(checked, 32);
}

/**
 * Cross-validation property: the analytical runtime stays within 15%
 * of the simulator across a sweep of layers and dataflows (the paper
 * reports 3.9% average against RTL; individual layers vary more).
 */
struct ValidationCase
{
    const char *dataflow;
    Count k, c, hw, rs, stride, pad;
    Count pes = 32;
};

class SimCrossValidation
    : public ::testing::TestWithParam<ValidationCase>
{
};

TEST_P(SimCrossValidation, AnalyticalMatchesSimulator)
{
    const ValidationCase &vc = GetParam();
    const Layer layer =
        conv(vc.k, vc.c, vc.hw, vc.rs, vc.stride, vc.pad);
    const Dataflow df = dataflows::byName(vc.dataflow);
    AcceleratorConfig cfg = smallConfig();
    cfg.num_pes = vc.pes;

    const LayerAnalysis la = Analyzer(cfg).analyzeLayer(layer, df);
    const SimResult sim = simulateLayer(layer, df, cfg);
    const double err =
        std::abs(la.runtime - sim.cycles) / sim.cycles;
    EXPECT_LT(err, 0.15)
        << vc.dataflow << " k" << vc.k << " c" << vc.c << " hw"
        << vc.hw << ": analytical " << la.runtime << " vs sim "
        << sim.cycles;
}

INSTANTIATE_TEST_SUITE_P(
    LayerSweep, SimCrossValidation,
    ::testing::Values(
        ValidationCase{"C-P", 8, 8, 12, 3, 1, 1},
        ValidationCase{"C-P", 16, 32, 14, 3, 1, 1},
        ValidationCase{"X-P", 8, 8, 12, 3, 1, 1},
        ValidationCase{"X-P", 16, 3, 32, 3, 1, 1},
        ValidationCase{"X-P", 8, 8, 21, 5, 2, 0},
        ValidationCase{"YX-P", 8, 8, 24, 3, 1, 1},
        ValidationCase{"YX-P", 16, 16, 32, 3, 1, 1},
        ValidationCase{"YR-P", 8, 8, 16, 3, 1, 1},
        ValidationCase{"YR-P", 16, 16, 28, 3, 1, 1},
        ValidationCase{"YR-P", 8, 3, 33, 5, 2, 0},
        ValidationCase{"KC-P", 64, 64, 14, 3, 1, 1, 64},
        ValidationCase{"KC-P", 32, 16, 28, 3, 1, 1, 64},
        ValidationCase{"KC-P", 16, 3, 32, 3, 1, 1, 64}),
    [](const ::testing::TestParamInfo<ValidationCase> &info) {
        const ValidationCase &vc = info.param;
        std::string name = vc.dataflow;
        for (char &ch : name) {
            if (ch == '-')
                ch = '_';
        }
        return name + "_k" + std::to_string(vc.k) + "_c" +
               std::to_string(vc.c) + "_hw" + std::to_string(vc.hw) +
               "_rs" + std::to_string(vc.rs) + "_s" +
               std::to_string(vc.stride);
    });

} // namespace
} // namespace maestro
