/**
 * @file
 * Randomized equivalence suite pinning the periodic fast simulator to
 * the exact walker, byte for byte (the `--sim-exact` discipline,
 * mirroring test_dse_equivalence.cc).
 *
 * Two layers of defense: (1) every SimResult field of the fast path
 * must compare EQUAL (not near) to the exact walk; (2) the exact walk
 * itself classifies each visited position through the same partition
 * tree and throws if any class member's contribution deviates from
 * its representative — so a pass here proves the step classification,
 * not just the final sums.
 */

#include <gtest/gtest.h>

#include "src/common/error.hh"
#include "src/core/analyzer.hh"
#include "src/dataflows/catalog.hh"
#include "src/sim/crossval.hh"
#include "src/sim/reference_sim.hh"

namespace maestro
{
namespace
{

/** Exact walks get slow beyond this; the fast path reports steps
 *  before we commit to walking them. */
constexpr double kMaxExactSteps = 60000.0;

void
expectIdentical(const SimResult &fast, const SimResult &exact,
                const std::string &what)
{
    EXPECT_EQ(fast.cycles, exact.cycles) << what;
    EXPECT_EQ(fast.steps, exact.steps) << what;
    EXPECT_EQ(fast.step_classes, exact.step_classes) << what;
    EXPECT_EQ(fast.macs, exact.macs) << what;
    EXPECT_EQ(fast.avg_active_pes, exact.avg_active_pes) << what;
    for (TensorKind t : kAllTensors) {
        EXPECT_EQ(fast.l2_supply[t], exact.l2_supply[t]) << what;
        EXPECT_EQ(fast.dram_fill[t], exact.dram_fill[t]) << what;
    }
    EXPECT_EQ(fast.output_commits, exact.output_commits) << what;
    EXPECT_EQ(fast.dram_busy, exact.dram_busy) << what;
    EXPECT_EQ(fast.noc_busy, exact.noc_busy) << what;
    EXPECT_EQ(fast.compute_cycles, exact.compute_cycles) << what;
}

/**
 * Runs one triple down both paths and asserts byte-identity. Returns
 * false when the triple is unbindable or too big to walk exactly.
 */
bool
checkTriple(const crossval::TripleSpec &spec)
{
    Layer layer = spec.layer();
    Dataflow df = dataflows::byName(spec.dataflow);
    AcceleratorConfig cfg = spec.config();

    SimResult fast;
    try {
        fast = simulateLayer(layer, df, cfg);
    } catch (const Error &) {
        return false; // unbindable combination; sampler roams wide
    }
    if (fast.steps > kMaxExactSteps)
        return false;

    SimOptions exact_opts;
    exact_opts.exact = true;
    const SimResult exact =
        simulateLayer(layer, df, cfg, exact_opts);
    expectIdentical(fast, exact, spec.describe());
    return true;
}

TEST(SimEquivalence, RandomizedTriples)
{
    // The crossval sampler covers ops, strides, pads, densities,
    // every catalog dataflow, and hardware shapes that force partial
    // folds and edge chunks.
    int checked = 0;
    for (std::uint64_t i = 0; i < 400 && checked < 60; ++i) {
        if (checkTriple(crossval::sampleTriple(20260809, i)))
            ++checked;
    }
    // The sampler must produce a healthy number of walkable triples,
    // or this suite silently stops testing anything.
    EXPECT_GE(checked, 40);
}

TEST(SimEquivalence, HandpickedEdgeCases)
{
    // Shapes chosen to exercise every boundary the periodic path
    // special-cases: clamped edge chunks, partial folds, stride
    // phases, padding diagonals, depthwise coupling, N > 1.
    std::vector<crossval::TripleSpec> specs;

    crossval::TripleSpec t;
    t.k = 8;
    t.c = 8;
    t.y = t.x = 13; // prime: edge chunks on every tiling
    t.r = t.s = 3;
    t.pad = 1;
    for (const char *df : {"C-P", "X-P", "YX-P", "YR-P", "KC-P"}) {
        t.dataflow = df;
        specs.push_back(t);
    }

    t.stride = 2; // stride phases + clamped right edge
    t.y = t.x = 17;
    specs.push_back(t);
    t.dataflow = "YX-P"; // stride-2 output-slide clamp (ROADMAP 6)
    specs.push_back(t);

    t = crossval::TripleSpec();
    t.op = OpType::DepthwiseConv;
    t.k = 1;
    t.c = 24;
    t.y = t.x = 14;
    t.r = t.s = 3;
    t.pad = 1;
    t.dataflow = "YR-P";
    specs.push_back(t);
    t.dataflow = "C-P";
    specs.push_back(t);

    t = crossval::TripleSpec();
    t.n = 2; // batch loop
    t.k = 4;
    t.c = 6;
    t.y = t.x = 9;
    t.r = t.s = 5;
    t.dataflow = "X-P";
    t.num_pes = 48; // partial folds
    specs.push_back(t);

    t = crossval::TripleSpec();
    t.k = 16;
    t.c = 3; // first-layer shape: C smaller than any tile
    t.y = t.x = 23;
    t.r = t.s = 7;
    t.stride = 2;
    t.pad = 3;
    t.dataflow = "YR-P";
    t.input_density = 0.5; // density scaling must commute
    t.weight_density = 0.9;
    specs.push_back(t);

    int checked = 0;
    for (const crossval::TripleSpec &spec : specs) {
        if (checkTriple(spec))
            ++checked;
    }
    EXPECT_GE(checked, static_cast<int>(specs.size()) - 2);
}

TEST(SimEquivalence, StridedYxPCoversAllOutputs)
{
    // Before the binding clamp, YX-P's 8-output slide skipped every
    // other output column at stride 2: the simulator faithfully
    // reported half the MACs while the analytical count stayed
    // algorithmic. With the clamp, both sides must agree exactly at
    // any stride (which also lets the crossval sampler roam strided
    // YX-P triples again).
    crossval::TripleSpec t;
    t.k = 8;
    t.c = 8;
    t.y = t.x = 17;
    t.r = t.s = 3;
    t.stride = 2;
    t.pad = 1;
    t.dataflow = "YX-P";
    const Layer layer = t.layer();
    const Dataflow df = dataflows::byName(t.dataflow);
    const AcceleratorConfig cfg = t.config();
    const SimResult sim = simulateLayer(layer, df, cfg);
    const LayerAnalysis la = Analyzer(cfg).analyzeLayer(layer, df);
    EXPECT_EQ(sim.macs, la.total_macs);
}

TEST(SimEquivalence, FastPathCollapsesSteadyState)
{
    // A steady-state-dominated layer: the walker sees hundreds of
    // thousands of steps, the periodic path a few hundred classes.
    crossval::TripleSpec t;
    t.k = 64;
    t.c = 64;
    t.y = t.x = 28;
    t.r = t.s = 3;
    t.pad = 1;
    t.dataflow = "KC-P";
    t.num_pes = 64;

    const SimResult fast =
        simulateLayer(t.layer(), dataflows::byName(t.dataflow),
                      t.config());
    EXPECT_GT(fast.steps, 100.0 * fast.step_classes)
        << "periodic path should collapse the steady state";
}

} // namespace
} // namespace maestro
