/**
 * @file
 * Unit tests for the tensor analysis engine (paper Table 1 couplings).
 */

#include <gtest/gtest.h>

#include "src/core/tensor_analysis.hh"

namespace maestro
{
namespace
{

DimMap<Count>
dims(Count n, Count k, Count c, Count y, Count x, Count r, Count s)
{
    DimMap<Count> d;
    d[Dim::N] = n;
    d[Dim::K] = k;
    d[Dim::C] = c;
    d[Dim::Y] = y;
    d[Dim::X] = x;
    d[Dim::R] = r;
    d[Dim::S] = s;
    return d;
}

TEST(TensorAnalysis, DenseConvCouplings)
{
    Layer l("c", OpType::Conv2D, dims(1, 4, 6, 8, 8, 3, 3));
    const TensorInfo info = analyzeTensors(l);

    const TensorSpec &w = info.spec(TensorKind::Weight);
    EXPECT_TRUE(w.coupled[Dim::K]);
    EXPECT_TRUE(w.coupled[Dim::C]);
    EXPECT_TRUE(w.coupled[Dim::R]);
    EXPECT_TRUE(w.coupled[Dim::S]);
    EXPECT_FALSE(w.coupled[Dim::N]);
    EXPECT_FALSE(w.coupled[Dim::Y]);

    const TensorSpec &i = info.spec(TensorKind::Input);
    EXPECT_TRUE(i.coupled[Dim::N]);
    EXPECT_TRUE(i.coupled[Dim::C]);
    EXPECT_TRUE(i.coupled[Dim::Y]);
    EXPECT_TRUE(i.coupled[Dim::X]);
    EXPECT_FALSE(i.coupled[Dim::K]);

    const TensorSpec &o = info.spec(TensorKind::Output);
    EXPECT_TRUE(o.is_output);
    EXPECT_TRUE(o.coupled[Dim::N]);
    EXPECT_TRUE(o.coupled[Dim::K]);
    EXPECT_TRUE(o.coupled[Dim::Y]);
    EXPECT_TRUE(o.coupled[Dim::X]);
    EXPECT_FALSE(o.coupled[Dim::C]);
}

TEST(TensorAnalysis, ReductionDims)
{
    Layer l("c", OpType::Conv2D, dims(1, 4, 6, 8, 8, 3, 3));
    const TensorInfo info = analyzeTensors(l);
    EXPECT_TRUE(info.reduction[Dim::C]);
    EXPECT_TRUE(info.reduction[Dim::R]);
    EXPECT_TRUE(info.reduction[Dim::S]);
    EXPECT_FALSE(info.reduction[Dim::K]);
    EXPECT_FALSE(info.reduction[Dim::N]);
    EXPECT_FALSE(info.reduction[Dim::Y]);
}

TEST(TensorAnalysis, DepthwiseOutputCoupledToC)
{
    // Paper Sec. 4.1: in depth-wise convs the output couples to the
    // input channel, not the output channel.
    Layer l("dw", OpType::DepthwiseConv, dims(1, 1, 32, 10, 10, 3, 3));
    const TensorInfo info = analyzeTensors(l);
    const TensorSpec &o = info.spec(TensorKind::Output);
    EXPECT_TRUE(o.coupled[Dim::C]);
    EXPECT_FALSE(o.coupled[Dim::K]);
    EXPECT_FALSE(info.reduction[Dim::C]);
    EXPECT_TRUE(info.reduction[Dim::R]);
    const TensorSpec &w = info.spec(TensorKind::Weight);
    EXPECT_FALSE(w.coupled[Dim::K]);
}

TEST(TensorAnalysis, CoupledDimsList)
{
    Layer l("c", OpType::Conv2D, dims(1, 4, 6, 8, 8, 3, 3));
    const TensorInfo info = analyzeTensors(l);
    const auto w_dims = info.spec(TensorKind::Weight).coupledDims();
    EXPECT_EQ(w_dims,
              (std::vector<Dim>{Dim::K, Dim::C, Dim::R, Dim::S}));
}

TEST(TensorAnalysis, OutputSpaceShift)
{
    // Co-mapped Y and R with equal shift: output does not move
    // (the Eyeriss diagonal).
    EXPECT_EQ(outputSpaceShift(1, 1), 0);
    EXPECT_EQ(outputSpaceShift(1, 0), 1);
    EXPECT_EQ(outputSpaceShift(0, 1), -1);
}

} // namespace
} // namespace maestro
