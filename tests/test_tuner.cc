/**
 * @file
 * Unit tests for the dataflow auto-tuner.
 */

#include <gtest/gtest.h>

#include "src/common/error.hh"
#include "src/dataflows/catalog.hh"
#include "src/dataflows/tuner.hh"
#include "src/model/zoo.hh"

namespace maestro
{
namespace
{

TEST(Tuner, CandidatesAreStructurallyValid)
{
    const Network net = zoo::vgg16();
    const auto candidates = dataflows::generateCandidates(
        net.layer("CONV11"), dataflows::TunerOptions());
    EXPECT_GT(candidates.size(), 50u);
    for (const Dataflow &df : candidates)
        EXPECT_NO_THROW(df.validate()) << df.name();
}

TEST(Tuner, CandidatesBindToEveryZooLayerClass)
{
    // Every candidate must bind on representative layers of every
    // operator class (no crash, positive runtime).
    const Analyzer analyzer(AcceleratorConfig::paperStudy());
    struct Pick { const char *model, *layer; };
    const Pick picks[] = {
        {"vgg16", "CONV1"},          // early conv
        {"vgg16", "CONV13"},         // late conv
        {"mobilenetv2", "B2_dw"},    // depth-wise
        {"mobilenetv2", "B2_expand"},// point-wise
        {"vgg16", "FC3"},            // fully connected
    };
    dataflows::TunerOptions options;
    options.cluster_sizes = {1, 8, 32};
    options.channel_tiles = {1, 16};
    for (const Pick &pick : picks) {
        const Network net = zoo::byName(pick.model);
        const Layer &layer = net.layer(pick.layer);
        for (const Dataflow &df :
             dataflows::generateCandidates(layer, options)) {
            const LayerAnalysis la = analyzer.analyzeLayer(layer, df);
            EXPECT_GT(la.runtime, 0.0)
                << pick.model << "/" << pick.layer << " " << df.name();
        }
    }
}

TEST(Tuner, DeduplicatesStructuralDuplicates)
{
    // The generator emits clamping-equivalent candidates (e.g. a
    // transposed channel pair whose tile directive collapses away);
    // tuneDataflow must drop them by fingerprint before evaluation
    // and report how many were removed.
    const Analyzer analyzer(AcceleratorConfig::paperStudy());
    const Network net = zoo::vgg16();
    const auto res = dataflows::tuneDataflow(
        analyzer, net.layer("CONV11"), dataflows::Objective::Runtime);
    EXPECT_EQ(res.candidates, 186u);
    EXPECT_EQ(res.deduped, 64u);
    EXPECT_EQ(res.rejected, 0u);
    // candidates counts what the generator produced, before dedup.
    const auto generated = dataflows::generateCandidates(
        net.layer("CONV11"), dataflows::TunerOptions());
    EXPECT_EQ(generated.size(), res.candidates);
}

TEST(Tuner, RankedResultsAreSorted)
{
    const Analyzer analyzer(AcceleratorConfig::paperStudy());
    const Network net = zoo::vgg16();
    const auto res = dataflows::tuneDataflow(
        analyzer, net.layer("CONV11"), dataflows::Objective::Runtime);
    ASSERT_FALSE(res.ranked.empty());
    for (std::size_t i = 1; i < res.ranked.size(); ++i) {
        EXPECT_LE(res.ranked[i - 1].objective_value,
                  res.ranked[i].objective_value);
    }
    EXPECT_DOUBLE_EQ(res.best().objective_value,
                     res.ranked.front().objective_value);
}

TEST(Tuner, BeatsOrMatchesWorstCatalogEntry)
{
    // The tuned dataflow must be no worse than the best catalog entry
    // times a small slack (its space includes catalog-like shapes).
    const Analyzer analyzer(AcceleratorConfig::paperStudy());
    const Network net = zoo::vgg16();
    const Layer &layer = net.layer("CONV11");
    double best_catalog = 0.0;
    for (const Dataflow &df : dataflows::table3()) {
        const double r = analyzer.analyzeLayer(layer, df).runtime;
        if (best_catalog == 0.0 || r < best_catalog)
            best_catalog = r;
    }
    const auto res = dataflows::tuneDataflow(
        analyzer, layer, dataflows::Objective::Runtime);
    EXPECT_LE(res.best().runtime, best_catalog * 1.25);
}

TEST(Tuner, ObjectiveSelectsDifferentWinners)
{
    const Analyzer analyzer(AcceleratorConfig::paperStudy());
    const Network net = zoo::vgg16();
    const Layer &layer = net.layer("CONV2");
    const auto by_runtime = dataflows::tuneDataflow(
        analyzer, layer, dataflows::Objective::Runtime);
    const auto by_energy = dataflows::tuneDataflow(
        analyzer, layer, dataflows::Objective::Energy);
    EXPECT_LE(by_energy.best().energy,
              by_runtime.best().energy * (1.0 + 1e-9));
    EXPECT_LE(by_runtime.best().runtime,
              by_energy.best().runtime * (1.0 + 1e-9));
}

TEST(Tuner, TopKRespected)
{
    const Analyzer analyzer(AcceleratorConfig::paperStudy());
    const Network net = zoo::vgg16();
    dataflows::TunerOptions options;
    options.top_k = 3;
    const auto res =
        dataflows::tuneDataflow(analyzer, net.layer("CONV11"),
                                dataflows::Objective::Edp, options);
    EXPECT_LE(res.ranked.size(), 3u);
}

TEST(Tuner, EmptyRankingThrowsOnBest)
{
    dataflows::TunerResult empty;
    EXPECT_THROW(empty.best(), Error);
}

} // namespace
} // namespace maestro
