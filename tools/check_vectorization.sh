#!/bin/sh
# Codegen gate for the DSE batch kernels (src/dse/batch_kernels.cc).
#
# The fast sweep's throughput rests on the compiler autovectorizing the
# SoA inner loops — a silent vectorization regression (a new branch, an
# aliasing pessimization, a changed loop shape) would not fail any
# correctness test, only quietly cost the ~5x sweep speedup. This
# script compiles the kernel translation unit exactly as the Release
# build does and fails unless the compiler reports a vectorized loop
# inside every hot kernel.
#
# Works with both GCC (-fopt-info-vec-optimized) and Clang
# (-Rpass=loop-vectorize); both emit `file:line:col: ... vectorized`
# remarks, which is all the parsing below relies on.
#
# Usage: tools/check_vectorization.sh   (CXX overrides the compiler)

set -eu

cd "$(dirname "$0")/.."
SRC=src/dse/batch_kernels.cc
CXX=${CXX:-g++}
REPORT=$(mktemp)
OBJ=$(mktemp)
trap 'rm -f "$REPORT" "$OBJ"' EXIT

case "$("$CXX" --version 2>/dev/null)" in
    *clang*) VEC_FLAGS="-Rpass=loop-vectorize" ;;
    *)       VEC_FLAGS="-fopt-info-vec-optimized" ;;
esac

# Same language/optimization surface as the Release build of the
# library; remarks go to stderr on both compilers.
"$CXX" -std=c++20 -O3 -I. $VEC_FLAGS -c "$SRC" -o "$OBJ" \
    2> "$REPORT" || {
    echo "check_vectorization: compile failed:" >&2
    cat "$REPORT" >&2
    exit 1
}

fail=0

# Require at least one vectorized-loop remark whose line number falls
# inside the kernel's definition (function name at column 0, body
# closed by a `}` at column 0 — the file's uniform style).
check_kernel() {
    fn=$1
    start=$(grep -n "^${fn}(" "$SRC" | head -n 1 | cut -d: -f1)
    if [ -z "$start" ]; then
        echo "FAIL: kernel ${fn} not found in ${SRC}" >&2
        fail=1
        return
    fi
    end=$(awk -v s="$start" 'NR > s && /^}/ { print NR; exit }' "$SRC")
    hits=$(grep "vectorized" "$REPORT" |
        awk -F: -v s="$start" -v e="$end" \
            '$1 ~ /batch_kernels\.cc$/ && $2 + 0 >= s && $2 + 0 <= e' |
        wc -l)
    if [ "$hits" -eq 0 ]; then
        echo "FAIL: no vectorized loop reported in ${fn}()" \
            "(${SRC}:${start}-${end})" >&2
        fail=1
    else
        echo "ok: ${fn}() — ${hits} vectorized loop(s)"
    fi
}

# The bandwidth-lane kernels. sweepFeasibleCounts is deliberately
# absent: its two-pointer walk is a data-dependent scan that no
# compiler vectorizes, and its win is algorithmic (O(n1+n2) probes),
# not SIMD.
check_kernel batchRuntimes
check_kernel batchBusTerms
check_kernel batchFeasibleRow
check_kernel batchAdd
check_kernel batchAddValidWindow

if [ "$fail" -ne 0 ]; then
    echo "check_vectorization: FAILED — vectorization report follows:" >&2
    grep "vectorized" "$REPORT" >&2 || true
    exit 1
fi
echo "check_vectorization: all batch kernels vectorize"
