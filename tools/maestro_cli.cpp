/**
 * @file
 * maestro — command-line driver for the library.
 *
 * Subcommands:
 *   analyze   analytical model for one layer or a whole network
 *   simulate  reference cycle-level simulation of one layer
 *             (periodic fast path by default; --sim-exact walks
 *             every nest position — the byte-identical oracle)
 *   crossval  mass randomized analytical-vs-simulator validation
 *   dse       hardware design space exploration for one layer
 *   tune      dataflow auto-tuning for one layer
 *   serve     long-lived HTTP analysis server (see src/serve)
 *
 * Inputs come from the zoo (--model vgg16 [--layer CONV2]) or a DSL
 * file (--file my.m; "-" reads the DSL from stdin, so scripts can
 * pipe the same payloads they would POST to the server). Dataflows
 * come from the catalog (--dataflow KC-P) or the file's Dataflow
 * blocks. Hardware defaults to the paper's 256-PE study config,
 * overridable with --pes/--noc-bw/... or a file's Accelerator block.
 *
 * Examples:
 *   maestro analyze --model vgg16 --layer CONV11 --dataflow KC-P
 *   maestro analyze --model mobilenetv2 --dataflow YR-P
 *   maestro analyze --file - --format json < payload.m
 *   maestro simulate --model alexnet --layer CONV2 --dataflow YR-P
 *   maestro dse --model vgg16 --layer CONV2 --dataflow KC-P --area 16
 *   maestro tune --model vgg16 --layer CONV11 --objective energy
 *   maestro serve --port 8080 --threads 4 --queue 64
 *
 * Shared options: --threads N runs analyzer evaluations on N worker
 * threads (results are bit-identical to --threads 1); --stats on
 * prints pipeline cache hit/miss counters and evaluation throughput
 * after the command's normal output. `analyze --format json` emits
 * the server's /analyze JSON (byte-identical for equal inputs).
 *
 * Observability: --trace OUT.json captures spans (pipeline stages,
 * pool tasks, DSE shards) into a Chrome trace-event file loadable in
 * Perfetto; --profile prints a per-stage time/hit-rate table to
 * stderr. Neither changes the command's stdout bytes. `maestro
 * --version` prints the build version.
 *
 * Exit codes: 0 success, 1 runtime error, 2 usage error (missing or
 * unknown subcommand; usage goes to stderr).
 */

#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>

#include "src/common/error.hh"
#include "src/common/table.hh"
#include "src/common/version.hh"
#include "src/core/analyzer.hh"
#include "src/dataflows/catalog.hh"
#include "src/dse/explorer.hh"
#include "src/mapper/mapper.hh"
#include "src/frontend/parser.hh"
#include "src/model/zoo.hh"
#include "src/obs/metrics.hh"
#include "src/obs/obs.hh"
#include "src/serve/server.hh"
#include "src/serve/workers.hh"
#include "src/sim/crossval.hh"
#include "src/sim/reference_sim.hh"

namespace
{

using namespace maestro;

constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitUsage = 2;

const char *const kUsage =
    "usage: maestro <analyze|simulate|crossval|dse|tune|serve> "
    "[--key value ...]\n"
    "  analyze   --model NAME | --file PATH ('-' = stdin) "
    "[--layer L] [--dataflow D] [--format json]\n"
    "  simulate  --model NAME --layer L [--dataflow D] "
    "[--sim-exact] [--max-steps N] [--format json]\n"
    "            (--sim-exact walks every nest position; the default "
    "periodic path\n"
    "             is byte-identical and collapses the steady state)\n"
    "  crossval  [--triples N] [--seed S] [--threads N] [--check] "
    "[--format json]\n"
    "            (randomized analytical-vs-simulator sweep; --check "
    "applies the CI\n"
    "             error-tolerance gate and fails on violation)\n"
    "  dse       --model NAME --layer L --dataflow D "
    "[--area MM2] [--power MW] [--dse-exact]\n"
    "  tune      --model NAME [--layer L] [--objective "
    "runtime|energy|edp]\n"
    "            [--mode layer|network|joint] [--top-k N] "
    "[--enforce-l1] [--tune-exact]\n"
    "            [--clusters 1,4,16,64] [--tiles 1,8,64] "
    "[--act-tiles 1,4]\n"
    "            [--area MM2] [--power MW] [--format json]\n"
    "            (--layer required for layer/joint modes; "
    "--tune-exact runs the\n"
    "             exhaustive oracle the pruned search is validated "
    "against)\n"
    "  serve     [--port P] [--host ADDR] [--threads N] "
    "[--queue N] [--deadline-ms N]\n"
    "            [--workers N] [--jobs N] [--jobs-per-client N] "
    "[--client-share N]\n"
    "            [--client-weights a=4,b=1] [--cache-entries N] "
    "[--cache-bytes N]\n"
    "            [--drain-linger-ms N]\n"
    "            [--access-log PATH] [--access-log-max-bytes N] "
    "[--events-ring N]\n"
    "            [--metrics-max-clients N] [--status-port P]\n"
    "            (--workers > 1 forks N shared-nothing SO_REUSEPORT "
    "processes;\n"
    "             SIGTERM drains every worker gracefully; workers "
    "share one metrics\n"
    "             segment, so GET /metrics on any worker is the "
    "fleet view;\n"
    "             --status-port adds a supervisor fleet-view "
    "listener;\n"
    "             --access-log appends structured JSONL events, "
    "rotated at\n"
    "             --access-log-max-bytes; GET /events tails the "
    "last N)\n"
    "shared: [--threads N] [--stats on] [--trace OUT.json] "
    "[--profile]\n"
    "  maestro --version prints the build version\n";

/** Parsed command line: subcommand plus --key value options. */
struct Args
{
    std::string command;
    std::map<std::string, std::string> options;

    bool has(const std::string &key) const { return options.count(key); }

    std::string
    get(const std::string &key, const std::string &fallback = "") const
    {
        const auto it = options.find(key);
        return it == options.end() ? fallback : it->second;
    }

    Count
    getInt(const std::string &key, Count fallback) const
    {
        const auto it = options.find(key);
        return it == options.end() ? fallback : std::stoll(it->second);
    }

    double
    getDouble(const std::string &key, double fallback) const
    {
        const auto it = options.find(key);
        return it == options.end() ? fallback : std::stod(it->second);
    }
};

Args
parseArgs(int argc, char **argv)
{
    Args args;
    args.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string key = argv[i];
        fatalIf(key.rfind("--", 0) != 0,
                msg("expected --option, found '", key, "'"));
        // Valueless switches.
        if (key == "--dse-exact" || key == "--profile" ||
            key == "--enforce-l1" || key == "--tune-exact" ||
            key == "--sim-exact" || key == "--check") {
            args.options[key.substr(2)] = "on";
            continue;
        }
        fatalIf(i + 1 >= argc, msg("missing value for ", key));
        args.options[key.substr(2)] = argv[++i];
    }
    return args;
}

/** Everything a subcommand needs, resolved from the arguments. */
struct Inputs
{
    Network network{"none"};
    std::optional<std::string> layer_name;
    std::vector<Dataflow> dataflows;
    AcceleratorConfig config = AcceleratorConfig::paperStudy();
};

/** Reads a DSL file; "-" means stdin (the same bytes a script would
 *  POST to the server). */
frontend::ParsedFile
parseDslArg(const std::string &path)
{
    if (path != "-")
        return frontend::parseFile(path);
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    return frontend::parseString(buffer.str());
}

Inputs
resolveInputs(const Args &args)
{
    Inputs in;
    std::optional<frontend::ParsedFile> file;
    if (args.has("file"))
        file = parseDslArg(args.get("file"));

    if (args.has("model")) {
        in.network = zoo::byName(args.get("model"));
    } else if (file && !file->networks.empty()) {
        in.network = file->networks.front();
    } else {
        throw Error("provide --model <zoo-name> or --file with a "
                    "Network block");
    }

    if (args.has("layer"))
        in.layer_name = args.get("layer");

    if (args.has("dataflow")) {
        const std::string name = args.get("dataflow");
        if (file && file->dataflows.count(name)) {
            in.dataflows.push_back(file->dataflows.at(name));
        } else {
            in.dataflows.push_back(dataflows::byName(name));
        }
    } else if (file && !file->dataflows.empty()) {
        for (const auto &[name, df] : file->dataflows)
            in.dataflows.push_back(df);
    } else {
        in.dataflows = dataflows::table3();
    }

    if (file && file->accelerator)
        in.config = *file->accelerator;
    in.config.num_pes = args.getInt("pes", in.config.num_pes);
    if (args.has("noc-bw")) {
        in.config.noc = NocModel(args.getDouble("noc-bw", 32.0),
                                 in.config.noc.avgLatency());
    }
    if (args.has("l1"))
        in.config.l1_bytes = args.getInt("l1", in.config.l1_bytes);
    if (args.has("l2"))
        in.config.l2_bytes = args.getInt("l2", in.config.l2_bytes);
    in.config.validate();
    return in;
}

/** The layers a subcommand operates on. */
std::vector<const Layer *>
selectLayers(const Inputs &in)
{
    std::vector<const Layer *> out;
    if (in.layer_name) {
        out.push_back(&in.network.layer(*in.layer_name));
    } else {
        for (const Layer &l : in.network.layers())
            out.push_back(&l);
    }
    return out;
}

/** Shared --threads/--stats options. */
struct RunOptions
{
    std::size_t num_threads = 1;
    bool print_stats = false;
};

RunOptions
runOptions(const Args &args)
{
    RunOptions opts;
    opts.num_threads =
        static_cast<std::size_t>(args.getInt("threads", 1));
    fatalIf(opts.num_threads < 1, "--threads must be >= 1");
    opts.print_stats = args.get("stats", "off") != "off";
    return opts;
}

/** Prints per-stage cache counters and evaluation throughput. */
void
printPipelineStats(const PipelineStats &stats, double seconds)
{
    std::cout << "\npipeline: " << stats.evaluations
              << " analyzer evaluations in "
              << fixedFormat(seconds, 3) << " s";
    if (seconds > 0.0) {
        std::cout << " ("
                  << fixedFormat(static_cast<double>(stats.evaluations) /
                                     seconds,
                                 1)
                  << " evals/s)";
    }
    std::cout << "\n";
    Table table({"stage", "hits", "misses", "evictions", "hit-rate"});
    auto add = [&](const char *name, const CacheStats &cs) {
        table.addRow({name, std::to_string(cs.hits),
                      std::to_string(cs.misses),
                      std::to_string(cs.evictions),
                      fixedFormat(100.0 * cs.hitRate(), 1) + "%"});
    };
    add("tensor", stats.tensor);
    add("binding", stats.binding);
    add("flat", stats.flat);
    add("layer", stats.layer);
    table.print(std::cout);
}

/**
 * --profile: per-stage hit/miss counters joined with the global
 * registry's stage-miss latency histograms, printed to stderr so
 * stdout (tables, --format json) stays clean for pipes.
 */
void
printProfile(const PipelineStats &stats)
{
    constexpr const char *kStages[4] = {"tensor", "binding", "flat",
                                        "layer"};
    const CacheStats *cs[4] = {&stats.tensor, &stats.binding,
                               &stats.flat, &stats.layer};
    Table table({"stage", "hits", "misses", "hit-rate", "miss-time(ms)",
                 "avg-miss(us)"});
    for (std::size_t i = 0; i < 4; ++i) {
        const LatencyHistogram::Snapshot snap =
            obs::Registry::global()
                .histogram("maestro_pipeline_stage_miss_us", "",
                           {{"stage", kStages[i]}})
                .snapshot();
        const double avg_us =
            snap.count > 0 ? static_cast<double>(snap.total_us) /
                                 static_cast<double>(snap.count)
                           : 0.0;
        table.addRow({kStages[i], std::to_string(cs[i]->hits),
                      std::to_string(cs[i]->misses),
                      fixedFormat(100.0 * cs[i]->hitRate(), 1) + "%",
                      fixedFormat(static_cast<double>(snap.total_us) /
                                      1000.0,
                                  2),
                      fixedFormat(avg_us, 1)});
    }
    std::cerr << "\nprofile (stage-miss wall time; hits are "
                 "cache-served):\n";
    table.print(std::cerr);
}

/**
 * analyze --format json: the server's /analyze JSON from the same
 * code path (serve::analyzeJson), so CLI and server bodies are
 * byte-identical for equal inputs.
 */
int
cmdAnalyzeJson(const Args &args, const Inputs &in)
{
    serve::RequestInputs req;
    req.network = in.network;
    req.dataflows = in.dataflows;
    req.config = in.config;
    req.layer_name = in.layer_name;
    auto pipeline = std::make_shared<AnalysisPipeline>();
    std::cout << serve::analyzeJson(req, pipeline, EnergyModel())
              << "\n";
    if (args.has("profile"))
        printProfile(pipeline->stats());
    return kExitOk;
}

int
cmdAnalyze(const Args &args, const Inputs &in)
{
    if (args.get("format", "table") == "json")
        return cmdAnalyzeJson(args, in);
    fatalIf(args.get("format", "table") != "table",
            "--format must be table or json");
    const RunOptions opts = runOptions(args);
    const Analyzer analyzer(in.config);
    const auto t0 = std::chrono::steady_clock::now();
    for (const Dataflow &df : in.dataflows) {
        std::cout << "== dataflow " << df.name() << " ==\n";
        Table table({"layer", "runtime(cyc)", "MACs/cyc", "util",
                     "energy(MACs)", "L1 req(B)", "L2 req(KB)",
                     "BW req", "bottleneck"});
        double total_runtime = 0.0;
        double total_energy = 0.0;
        const std::vector<const Layer *> layers = selectLayers(in);
        std::vector<Analyzer::BatchJob> jobs;
        jobs.reserve(layers.size());
        for (const Layer *layer : layers)
            jobs.push_back({*layer, df});
        const std::vector<Analyzer::BatchEval> evals =
            analyzer.evaluateBatch(jobs, opts.num_threads);
        for (std::size_t i = 0; i < layers.size(); ++i) {
            const Layer *layer = layers[i];
            fatalIf(!evals[i].ok, msg("layer '", layer->name(),
                                      "': ", evals[i].error));
            const LayerAnalysis &la = evals[i].analysis;
            total_runtime += la.runtime;
            total_energy += la.onchipEnergy();
            table.addRow(
                {layer->name(), engFormat(la.runtime),
                 fixedFormat(la.throughput, 1),
                 fixedFormat(la.utilization, 2),
                 engFormat(la.onchipEnergy()),
                 fixedFormat(la.cost.l1_bytes_required, 0),
                 fixedFormat(la.cost.l2_bytes_required / 1024.0, 1),
                 fixedFormat(la.noc_bw_requirement, 1),
                 la.bottleneck});
        }
        table.print(std::cout);
        std::cout << "total: " << engFormat(total_runtime)
                  << " cycles, " << engFormat(total_energy)
                  << " MAC-units energy\n\n";
    }
    if (opts.print_stats) {
        const auto t1 = std::chrono::steady_clock::now();
        printPipelineStats(
            analyzer.pipelineStats(),
            std::chrono::duration<double>(t1 - t0).count());
    }
    if (args.has("profile"))
        printProfile(analyzer.pipelineStats());
    return 0;
}

/** Simulator options shared by the table and JSON paths. */
SimOptions
simOptions(const Args &args)
{
    SimOptions options;
    options.exact = args.has("sim-exact");
    options.max_steps =
        args.getDouble("max-steps", options.max_steps);
    fatalIf(options.max_steps <= 0.0, "--max-steps must be positive");
    return options;
}

/**
 * simulate --format json: the server's /simulate JSON from the same
 * code path (serve::simulateJson), so CLI and server bodies are
 * byte-identical for equal inputs.
 */
int
cmdSimulateJson(const Args &args, const Inputs &in)
{
    serve::RequestInputs req;
    req.network = in.network;
    req.dataflows = in.dataflows;
    req.config = in.config;
    req.layer_name = in.layer_name;
    serve::QueryParams params;
    if (in.layer_name)
        params["layer"] = *in.layer_name;
    if (args.has("sim-exact"))
        params["exact"] = "on";
    if (args.has("max-steps"))
        params["max_steps"] = args.get("max-steps");
    auto pipeline = std::make_shared<AnalysisPipeline>();
    std::cout << serve::simulateJson(req, params, pipeline,
                                     EnergyModel())
              << "\n";
    if (args.has("profile"))
        printProfile(pipeline->stats());
    return kExitOk;
}

int
cmdSimulate(const Args &args, const Inputs &in)
{
    if (args.get("format", "table") == "json")
        return cmdSimulateJson(args, in);
    fatalIf(args.get("format", "table") != "table",
            "--format must be table or json");
    // Like the server's /simulate: a single-layer network needs no
    // explicit selection.
    fatalIf(!in.layer_name && in.network.layers().size() != 1,
            "simulate needs --layer");
    const Layer &layer = in.layer_name
                             ? in.network.layer(*in.layer_name)
                             : in.network.layers().front();
    const SimOptions options = simOptions(args);
    const Analyzer analyzer(in.config);
    Table table({"dataflow", "analytical(cyc)", "simulated(cyc)",
                 "error(%)", "sim MACs", "sim active PEs",
                 "steps/class"});
    for (const Dataflow &df : in.dataflows) {
        const LayerAnalysis la = analyzer.analyzeLayer(layer, df);
        const SimResult sim =
            simulateLayer(layer, df, in.config, options);
        table.addRow(
            {df.name(), engFormat(la.runtime), engFormat(sim.cycles),
             fixedFormat(100.0 * (la.runtime - sim.cycles) /
                             sim.cycles,
                         2),
             engFormat(sim.macs),
             fixedFormat(sim.avg_active_pes, 1),
             engFormat(sim.steps) + "/" +
                 engFormat(sim.step_classes)});
    }
    table.print(std::cout);
    return 0;
}

int
cmdCrossval(const Args &args)
{
    const RunOptions opts = runOptions(args);
    crossval::CrossvalOptions options;
    options.seed = static_cast<std::uint64_t>(
        args.getInt("seed", static_cast<Count>(options.seed)));
    options.triples = static_cast<std::uint64_t>(
        args.getInt("triples", static_cast<Count>(options.triples)));
    fatalIf(options.triples < 1, "--triples must be positive");
    options.threads = opts.num_threads;

    const auto t0 = std::chrono::steady_clock::now();
    const crossval::CrossvalReport report =
        crossval::runCrossval(options);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    if (args.get("format", "table") == "json") {
        std::cout << crossval::crossvalJson(options, report) << "\n";
    } else {
        fatalIf(args.get("format", "table") != "table",
                "--format must be table or json");
        std::cout << "crossval: " << report.evaluated << " of "
                  << report.requested << " triples evaluated ("
                  << report.skipped << " skipped) in "
                  << fixedFormat(seconds, 2) << " s ("
                  << engFormat(static_cast<double>(report.evaluated) /
                               std::max(seconds, 1e-9))
                  << " triples/s), seed " << options.seed << "\n"
                  << "simulated " << engFormat(report.total_steps)
                  << " nest steps via "
                  << engFormat(report.total_classes)
                  << " step classes\n";
        Table table({"metric", "mean err(%)", "max err(%)", "<=1%",
                     "<=5%", "<=25%", ">25%"});
        const auto add = [&](const char *name,
                             const crossval::MetricStats &m) {
            const double n =
                std::max<double>(1.0, static_cast<double>(m.count));
            const auto pct = [&](std::uint64_t c) {
                return fixedFormat(100.0 * static_cast<double>(c) / n,
                                   1);
            };
            table.addRow(
                {name, fixedFormat(m.meanAbsPct(), 2),
                 fixedFormat(m.max_abs_pct, 2), pct(m.hist[0]),
                 pct(m.hist[0] + m.hist[1] + m.hist[2]),
                 pct(m.count - m.hist[5]), pct(m.hist[5])});
        };
        add("cycles", report.cycles);
        add("MACs", report.macs);
        add("L2 supply", report.l2_supply);
        add("DRAM fill", report.dram_fill);
        table.print(std::cout);
    }

    if (args.has("check")) {
        const crossval::GateResult gate =
            crossval::checkGate(report, options);
        if (!gate.ok) {
            for (const std::string &f : gate.failures)
                std::cerr << "crossval gate: " << f << "\n";
            return kExitError;
        }
        std::cerr << "crossval gate: ok\n";
    }
    return kExitOk;
}

int
cmdDse(const Args &args, const Inputs &in)
{
    fatalIf(!in.layer_name, "dse needs --layer");
    fatalIf(in.dataflows.size() != 1,
            "dse needs exactly one --dataflow");
    const Layer &layer = in.network.layer(*in.layer_name);
    const RunOptions opts = runOptions(args);
    dse::DseOptions options;
    options.area_budget_mm2 = args.getDouble("area", 16.0);
    options.power_budget_mw = args.getDouble("power", 450.0);
    options.num_threads = opts.num_threads;
    options.exact = args.has("dse-exact");
    auto pipeline = std::make_shared<AnalysisPipeline>();
    const dse::Explorer explorer(in.config, AreaPowerModel(),
                                 EnergyModel(), pipeline);
    const dse::DseResult res = explorer.explore(
        layer, in.dataflows.front(), dse::DesignSpace::figure13(),
        options);
    std::cout << "explored " << engFormat(res.explored_points) << " ("
              << engFormat(res.valid_points) << " valid) in "
              << fixedFormat(res.seconds, 2) << " s ("
              << engFormat(res.rate) << " designs/s, "
              << (options.exact ? "exact" : "fast") << " sweep)\n";
    Table table({"objective", "PEs", "L1(B)", "L2(KB)", "BW",
                 "area", "power", "MACs/cyc", "energy"});
    auto add = [&](const char *name, const dse::DesignPoint &p) {
        table.addRow({name, std::to_string(p.num_pes),
                      std::to_string(p.l1_bytes),
                      fixedFormat(p.l2_bytes / 1024.0, 0),
                      fixedFormat(p.noc_bandwidth, 0),
                      fixedFormat(p.area, 2), fixedFormat(p.power, 0),
                      fixedFormat(p.throughput, 1),
                      engFormat(p.energy)});
    };
    add("throughput", res.best_throughput);
    add("energy", res.best_energy);
    add("EDP", res.best_edp);
    table.print(std::cout);
    if (opts.print_stats) {
        std::cout << "\ndse: " << engFormat(res.evaluated_points)
                  << " evaluated, " << engFormat(res.valid_points)
                  << " valid, " << fixedFormat(res.evaluated_pairs, 0)
                  << " (PEs,BW) pairs analyzed, frontier "
                  << res.frontier_size << " -> " << res.pareto.size()
                  << " kept, " << res.samples.size() << " samples\n";
        if (options.exact) {
            printPipelineStats(pipeline->stats(), res.seconds);
        } else {
            std::cout << "(fast sweep runs the stage engines "
                         "directly; pipeline caches unused)\n";
        }
    }
    if (args.has("profile"))
        printProfile(pipeline->stats());
    return 0;
}

/** Comma-separated positive Count list from a flag value. */
std::vector<Count>
parseCountList(const std::string &flag, const std::string &value)
{
    std::vector<Count> out;
    std::size_t pos = 0;
    while (pos <= value.size()) {
        const std::size_t comma =
            std::min(value.find(',', pos), value.size());
        const std::string entry = value.substr(pos, comma - pos);
        try {
            out.push_back(std::stoll(entry));
        } catch (const std::exception &) {
            out.push_back(0);
        }
        fatalIf(out.back() < 1,
                msg(flag, ": '", value,
                    "' is not a comma-separated list of positive "
                    "integers"));
        pos = comma + 1;
    }
    return out;
}

/** Mapper options resolved from the tune flags. */
mapper::MapperOptions
tuneOptions(const Args &args, const RunOptions &opts)
{
    mapper::MapperOptions options;
    options.num_threads = opts.num_threads;
    options.top_k = args.getInt("top-k", options.top_k);
    fatalIf(options.top_k < 1, "--top-k must be positive");
    options.enforce_l1_capacity = args.has("enforce-l1");
    options.exact = args.has("tune-exact");
    if (args.has("clusters"))
        options.space.cluster_sizes =
            parseCountList("--clusters", args.get("clusters"));
    if (args.has("tiles"))
        options.space.channel_tiles =
            parseCountList("--tiles", args.get("tiles"));
    if (args.has("act-tiles"))
        options.space.activation_tiles =
            parseCountList("--act-tiles", args.get("act-tiles"));
    return options;
}

/**
 * tune --format json: the server's /tune JSON from the same code
 * path (serve::tuneJson), so CLI and server bodies are
 * byte-identical for equal inputs.
 */
int
cmdTuneJson(const Args &args, const Inputs &in, const RunOptions &opts)
{
    serve::RequestInputs req;
    req.network = in.network;
    req.config = in.config;
    req.layer_name = in.layer_name;
    serve::QueryParams params;
    params["objective"] = args.get("objective", "runtime");
    params["mode"] = args.get("mode", "layer");
    if (in.layer_name)
        params["layer"] = *in.layer_name;
    if (args.has("top-k"))
        params["top_k"] = args.get("top-k");
    if (args.has("clusters"))
        params["clusters"] = args.get("clusters");
    if (args.has("tiles"))
        params["tiles"] = args.get("tiles");
    if (args.has("act-tiles"))
        params["act_tiles"] = args.get("act-tiles");
    if (args.has("enforce-l1"))
        params["enforce_l1"] = "on";
    if (args.has("tune-exact"))
        params["exact"] = "on";
    if (args.has("area"))
        params["area"] = args.get("area");
    if (args.has("power"))
        params["power"] = args.get("power");
    auto pipeline = std::make_shared<AnalysisPipeline>();
    std::cout << serve::tuneJson(req, params, pipeline, EnergyModel(),
                                 opts.num_threads)
              << "\n";
    if (args.has("profile"))
        printProfile(pipeline->stats());
    return kExitOk;
}

/** One search-stats summary line of a tune run. */
void
printSearchStats(const mapper::MapperStats &stats)
{
    std::cout << "covered " << engFormat(stats.covered)
              << " mappings (" << stats.generated << " canonical, "
              << stats.pruned_symmetry << " symmetry-pruned, "
              << stats.pruned_capacity << " capacity-cut, "
              << stats.evaluated << " evaluated, " << stats.rejected
              << " rejected) in " << fixedFormat(stats.seconds, 3)
              << " s = " << engFormat(stats.per_second)
              << " mappings/s\n\n";
}

int
cmdTune(const Args &args, const Inputs &in)
{
    const RunOptions opts = runOptions(args);
    if (args.get("format", "table") == "json")
        return cmdTuneJson(args, in, opts);
    fatalIf(args.get("format", "table") != "table",
            "--format must be table or json");

    const std::string obj = args.get("objective", "runtime");
    mapper::Objective objective = mapper::Objective::Runtime;
    if (obj == "energy")
        objective = mapper::Objective::Energy;
    else if (obj == "edp")
        objective = mapper::Objective::Edp;
    else
        fatalIf(obj != "runtime",
                "objective must be runtime, energy, or edp");
    const std::string mode = args.get("mode", "layer");
    fatalIf(mode != "layer" && mode != "network" && mode != "joint",
            "--mode must be layer, network, or joint");

    const mapper::MapperOptions options = tuneOptions(args, opts);
    const Analyzer analyzer(in.config);

    if (mode == "network") {
        const mapper::NetworkMapperResult res = mapper::mapNetwork(
            analyzer, in.network, objective, options);
        std::cout << "tuned network " << in.network.name() << " ("
                  << res.unique_shapes << " unique shapes, objective "
                  << obj << ")\n";
        printSearchStats(res.stats);
        Table table({"layer", "best dataflow", "objective", "reused"});
        for (const auto &entry : res.layers) {
            table.addRow({entry.layer, entry.best.dataflow.name(),
                          engFormat(entry.best.objective_value),
                          entry.reused ? "yes" : "no"});
        }
        table.print(std::cout);
        std::cout << "\nper-layer-best total: "
                  << engFormat(res.adaptive_total)
                  << "\nbest single dataflow ("
                  << engFormat(res.best_single.objective_value)
                  << "):\n"
                  << res.best_single.dataflow.toString();
        return 0;
    }

    fatalIf(!in.layer_name, "tune needs --layer");
    const Layer &layer = in.network.layer(*in.layer_name);

    if (mode == "joint") {
        dse::DseOptions dse_options;
        dse_options.area_budget_mm2 = args.getDouble("area", 16.0);
        dse_options.power_budget_mw = args.getDouble("power", 450.0);
        dse_options.num_threads = opts.num_threads;
        const mapper::JointMapperResult res = mapper::mapJoint(
            analyzer, layer, objective, dse::DesignSpace::figure13(),
            dse_options, options);
        std::cout << "joint-tuned " << layer.name() << " (objective "
                  << obj << ", " << res.designs.size()
                  << " shortlisted mappings, "
                  << engFormat(res.explored_points)
                  << " design points)\n";
        printSearchStats(res.mapping.stats);
        Table table({"dataflow", "PEs", "NoC BW", "objective"});
        for (const auto &d : res.designs) {
            table.addRow({d.mapping.dataflow.name(),
                          std::to_string(d.point.num_pes),
                          fixedFormat(d.point.noc_bandwidth, 1),
                          engFormat(d.objective_value)});
        }
        table.print(std::cout);
        std::cout << "\nwinning mapping (at " << res.best.point.num_pes
                  << " PEs, BW " << res.best.point.noc_bandwidth
                  << "):\n"
                  << res.best.mapping.dataflow.toString();
        return 0;
    }

    const mapper::MapperResult res =
        mapper::mapLayer(analyzer, layer, objective, options);
    std::cout << "tuned " << layer.name() << " (objective " << obj
              << (options.exact ? ", exhaustive oracle" : "") << ")\n";
    printSearchStats(res.stats);
    Table table({"rank", "dataflow", "runtime", "energy", "util"});
    int rank = 1;
    for (const auto &md : res.ranked) {
        table.addRow({std::to_string(rank++), md.dataflow.name(),
                      engFormat(md.runtime), engFormat(md.energy),
                      fixedFormat(md.utilization, 2)});
    }
    table.print(std::cout);
    std::cout << "\nwinning dataflow:\n"
              << res.best().dataflow.toString();
    return 0;
}

/** Parses --client-weights "alice=4,bob=1" into the weights map. */
std::map<std::string, std::uint32_t>
parseClientWeights(const std::string &spec)
{
    std::map<std::string, std::uint32_t> weights;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        const std::string item = spec.substr(pos, end - pos);
        pos = end + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        const std::string digits =
            eq == std::string::npos ? "" : item.substr(eq + 1);
        fatalIf(eq == std::string::npos || eq == 0 ||
                    digits.empty() || digits.size() > 9 ||
                    digits.find_first_not_of("0123456789") !=
                        std::string::npos,
                msg("--client-weights expects name=weight entries, "
                    "found '", item, "'"));
        const long long weight = std::stoll(digits);
        fatalIf(weight < 1, msg("--client-weights weight for '",
                                item.substr(0, eq),
                                "' must be >= 1"));
        weights[item.substr(0, eq)] =
            static_cast<std::uint32_t>(weight);
    }
    return weights;
}

/** The running server, for the signal handlers' graceful drain. */
serve::AnalysisServer *g_server = nullptr;

extern "C" void
handleStopSignal(int)
{
    if (g_server)
        g_server->requestStop(); // async-signal-safe
}

int
cmdServe(const Args &args)
{
    serve::ServeOptions opts;
    opts.host = args.get("host", opts.host);
    opts.port = static_cast<std::uint16_t>(
        args.getInt("port", opts.port));
    opts.worker_threads = static_cast<std::size_t>(
        args.getInt("threads", static_cast<Count>(opts.worker_threads)));
    opts.queue_capacity = static_cast<std::size_t>(args.getInt(
        "queue", static_cast<Count>(opts.queue_capacity)));
    opts.deadline_ms = static_cast<int>(args.getInt(
        "deadline-ms", static_cast<Count>(opts.deadline_ms)));
    opts.max_connections = static_cast<std::size_t>(args.getInt(
        "max-connections", static_cast<Count>(opts.max_connections)));
    opts.job_capacity = static_cast<std::size_t>(
        args.getInt("jobs", static_cast<Count>(opts.job_capacity)));
    opts.jobs_per_client = static_cast<std::size_t>(args.getInt(
        "jobs-per-client", static_cast<Count>(opts.jobs_per_client)));
    opts.client_share = static_cast<std::size_t>(args.getInt(
        "client-share", static_cast<Count>(opts.client_share)));
    opts.result_cache_entries = static_cast<std::size_t>(args.getInt(
        "cache-entries",
        static_cast<Count>(opts.result_cache_entries)));
    opts.result_cache_bytes = static_cast<std::size_t>(args.getInt(
        "cache-bytes", static_cast<Count>(opts.result_cache_bytes)));
    opts.drain_linger_ms = static_cast<int>(args.getInt(
        "drain-linger-ms", static_cast<Count>(opts.drain_linger_ms)));
    opts.client_weights = parseClientWeights(args.get("client-weights"));
    opts.access_log = args.get("access-log", opts.access_log);
    opts.access_log_max_bytes = static_cast<std::size_t>(args.getInt(
        "access-log-max-bytes",
        static_cast<Count>(opts.access_log_max_bytes)));
    opts.events_ring = static_cast<std::size_t>(args.getInt(
        "events-ring", static_cast<Count>(opts.events_ring)));
    opts.metrics_max_clients = static_cast<std::size_t>(args.getInt(
        "metrics-max-clients",
        static_cast<Count>(opts.metrics_max_clients)));

    const auto workers = static_cast<std::size_t>(
        args.getInt("workers", 1));
    const int status_port =
        static_cast<int>(args.getInt("status-port", -1));
    fatalIf(status_port >= 0 && workers < 2,
            "--status-port needs --workers >= 2 (a single-process "
            "server already serves the fleet view on its own port)");
    if (workers > 1)
        return serve::runWorkers(opts, workers, status_port) == 0
                   ? kExitOk
                   : kExitError;

    serve::AnalysisServer server(serve::ServeContext{}, opts);
    server.start();
    g_server = &server;
    std::signal(SIGINT, handleStopSignal);
    std::signal(SIGTERM, handleStopSignal);
    std::cerr << "maestro serve: listening on http://" << opts.host
              << ":" << server.port() << " (" << opts.worker_threads
              << " workers, queue " << opts.queue_capacity
              << ", deadline " << opts.deadline_ms << " ms)\n";
    server.run();
    g_server = nullptr;
    std::cerr << "maestro serve: drained, exiting\n";
    return kExitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace maestro;
    if (argc < 2) {
        std::cerr << kUsage;
        return kExitUsage;
    }
    const std::string command = argv[1];
    if (command == "--version" || command == "version") {
        std::cout << "maestro " << kVersion << "\n";
        return kExitOk;
    }
    const bool known = command == "analyze" || command == "simulate" ||
                       command == "crossval" || command == "dse" ||
                       command == "tune" || command == "serve";
    if (!known) {
        std::cerr << "error: unknown command '" << command << "'\n"
                  << kUsage;
        return kExitUsage;
    }
    try {
        const Args args = parseArgs(argc, argv);

        // Observability opt-ins, enabled before any analysis work:
        // --profile records site latencies, --trace additionally
        // captures spans for Chrome trace export. Neither changes
        // the command's stdout bytes.
        const std::string trace_path = args.get("trace");
        if (args.has("profile"))
            obs::enableMode(obs::kTiming);
        if (!trace_path.empty())
            obs::Tracer::instance().start();

        const int rc = [&] {
            if (args.command == "serve")
                return cmdServe(args);
            if (args.command == "crossval")
                return cmdCrossval(args);
            const Inputs in = resolveInputs(args);
            if (args.command == "analyze")
                return cmdAnalyze(args, in);
            if (args.command == "simulate")
                return cmdSimulate(args, in);
            if (args.command == "dse")
                return cmdDse(args, in);
            return cmdTune(args, in);
        }();

        if (!trace_path.empty()) {
            obs::Tracer &tracer = obs::Tracer::instance();
            tracer.stop();
            std::ofstream out(trace_path, std::ios::binary);
            fatalIf(!out, msg("cannot write trace file '", trace_path,
                              "'"));
            out << tracer.json() << "\n";
            std::cerr << "trace: wrote " << tracer.eventCount()
                      << " events (" << tracer.droppedCount()
                      << " dropped) to " << trace_path << "\n";
        }
        return rc;
    } catch (const Error &e) {
        std::cerr << "error: " << e.what() << "\n";
        return kExitError;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return kExitError;
    }
}
